package flowtable

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

func exactKey(ip, port uint64) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, ip).
		With(flow.FieldTpDst, port)
}

func TestPutLookupDelete(t *testing.T) {
	tb := New[int](flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst), 0)
	if _, ok := tb.Lookup(exactKey(1, 2)); ok {
		t.Fatal("lookup hit on empty table")
	}
	if replaced := tb.Put(exactKey(1, 2), 10); replaced {
		t.Fatal("fresh put reported replace")
	}
	if replaced := tb.Put(exactKey(1, 2), 20); !replaced {
		t.Fatal("second put did not report replace")
	}
	if v, ok := tb.Lookup(exactKey(1, 2)); !ok || v != 20 {
		t.Fatalf("Lookup = %d,%v want 20,true", v, ok)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d want 1", tb.Len())
	}
	if !tb.Delete(exactKey(1, 2)) {
		t.Fatal("delete of present key failed")
	}
	if tb.Delete(exactKey(1, 2)) {
		t.Fatal("double delete succeeded")
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d want 0", tb.Len())
	}
}

func TestMaskedComparison(t *testing.T) {
	// Only ip_dst's top byte is significant: keys differing elsewhere
	// must collide onto the same entry.
	mask := flow.EmptyMask.With(flow.FieldIPDst, flow.PrefixMask(flow.FieldIPDst, 8))
	tb := New[string](mask, 0)
	tb.Put(flow.Key{}.With(flow.FieldIPDst, 10<<24|1), "ten")
	if v, ok := tb.Lookup(flow.Key{}.With(flow.FieldIPDst, 10<<24|99).With(flow.FieldTpDst, 443)); !ok || v != "ten" {
		t.Fatalf("masked lookup = %q,%v want ten,true", v, ok)
	}
	if _, ok := tb.Lookup(flow.Key{}.With(flow.FieldIPDst, 11<<24)); ok {
		t.Fatal("lookup matched outside the mask")
	}
	// The same predicate expressed through differently-garbaged keys is
	// one entry.
	if replaced := tb.Put(flow.Key{}.With(flow.FieldIPDst, 10<<24|7), "ten2"); !replaced {
		t.Fatal("equivalent masked key did not replace")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d want 1", tb.Len())
	}
}

func TestEmptyMaskSingleBucket(t *testing.T) {
	tb := New[int](flow.EmptyMask, 0)
	tb.Put(exactKey(1, 1), 7)
	tb.Put(exactKey(2, 2), 9) // same (empty) masked key: replaces
	if tb.Len() != 1 {
		t.Fatalf("Len = %d want 1", tb.Len())
	}
	if v, ok := tb.Lookup(exactKey(3, 3)); !ok || v != 9 {
		t.Fatalf("empty-mask lookup = %d,%v want 9,true", v, ok)
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	tb := NewExact[uint64](0)
	const n = 10000
	for i := uint64(0); i < n; i++ {
		tb.Put(exactKey(i, i%7), i)
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d want %d", tb.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tb.Lookup(exactKey(i, i%7)); !ok || v != i {
			t.Fatalf("key %d: got %d,%v", i, v, ok)
		}
	}
}

func TestSizeHintAvoidsGrowth(t *testing.T) {
	tb := NewExact[int](1000)
	c := tb.Cap()
	for i := 0; i < 1000; i++ {
		tb.Put(exactKey(uint64(i), 0), i)
	}
	if tb.Cap() != c {
		t.Fatalf("table grew from %d to %d slots despite size hint", c, tb.Cap())
	}
}

func TestBackshiftDeletionKeepsChainsReachable(t *testing.T) {
	// Heavy insert/delete churn at high load exercises backshift across
	// wrapped probe chains; every surviving key must remain reachable.
	rng := rand.New(rand.NewSource(42))
	tb := NewExact[int](0)
	live := map[uint64]int{}
	for step := 0; step < 30000; step++ {
		id := uint64(rng.Intn(600))
		if _, ok := live[id]; ok && rng.Intn(2) == 0 {
			if !tb.Delete(exactKey(id, id)) {
				t.Fatalf("step %d: live key %d missing", step, id)
			}
			delete(live, id)
		} else {
			tb.Put(exactKey(id, id), step)
			live[id] = step
		}
		if tb.Len() != len(live) {
			t.Fatalf("step %d: Len=%d model=%d", step, tb.Len(), len(live))
		}
	}
	for id, want := range live {
		if v, ok := tb.Lookup(exactKey(id, id)); !ok || v != want {
			t.Fatalf("key %d: got %d,%v want %d,true", id, v, ok, want)
		}
	}
}

func TestResetKeepsAllocation(t *testing.T) {
	tb := NewExact[int](0)
	for i := 0; i < 100; i++ {
		tb.Put(exactKey(uint64(i), 0), i)
	}
	c := tb.Cap()
	tb.Reset()
	if tb.Len() != 0 || tb.Cap() != c {
		t.Fatalf("Reset: Len=%d Cap=%d want 0,%d", tb.Len(), tb.Cap(), c)
	}
	if _, ok := tb.Lookup(exactKey(1, 0)); ok {
		t.Fatal("lookup hit after Reset")
	}
	tb.Put(exactKey(1, 0), 1)
	if tb.Len() != 1 {
		t.Fatal("table unusable after Reset")
	}
}

func TestIterCoversAllEntriesOnce(t *testing.T) {
	tb := NewExact[int](0)
	want := map[flow.Key]int{}
	for i := 0; i < 500; i++ {
		k := exactKey(uint64(i), uint64(i%13))
		tb.Put(k, i)
		want[k] = i
	}
	got := map[flow.Key]int{}
	for it := tb.Iter(); it.Next(); {
		if _, dup := got[it.Key()]; dup {
			t.Fatalf("iterator visited %v twice", it.Key())
		}
		got[it.Key()] = it.Value()
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %v: iterated %d want %d", k, got[k], v)
		}
	}
}

func TestZeroIterAndRangeEarlyStop(t *testing.T) {
	var it Iter[int]
	if it.Next() {
		t.Fatal("zero iterator advanced")
	}
	tb := NewExact[int](0)
	for i := 0; i < 10; i++ {
		tb.Put(exactKey(uint64(i), 0), i)
	}
	n := 0
	tb.Range(func(flow.Key, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("Range early stop visited %d", n)
	}
}

func TestLookupZeroAllocs(t *testing.T) {
	tb := NewExact[int](0)
	for i := 0; i < 1024; i++ {
		tb.Put(exactKey(uint64(i), 0), i)
	}
	k := exactKey(77, 0)
	miss := exactKey(99999, 1)
	if allocs := testing.AllocsPerRun(1000, func() {
		tb.Lookup(k)
		tb.Lookup(miss)
	}); allocs != 0 {
		t.Fatalf("Lookup allocates %.1f allocs/op, want 0", allocs)
	}
}
