package flowtable

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// benchKeys builds n keys plus a parallel set of misses under the given
// mask's significant fields.
func benchKeys(n int) ([]flow.Key, []flow.Key) {
	rng := rand.New(rand.NewSource(1))
	hits := make([]flow.Key, n)
	misses := make([]flow.Key, n)
	for i := range hits {
		hits[i] = flow.Key{}.
			With(flow.FieldIPDst, rng.Uint64()).
			With(flow.FieldTpDst, rng.Uint64())
		misses[i] = flow.Key{}.
			With(flow.FieldIPDst, rng.Uint64()|1<<31).
			With(flow.FieldTpSrc, rng.Uint64())
	}
	return hits, misses
}

// BenchmarkTableLookupHit is the raw fused-probe hit path: one table, one
// mask, resident keys.
func BenchmarkTableLookupHit(b *testing.B) {
	hits, _ := benchKeys(1024)
	tb := New[int](flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst), len(hits))
	for i, k := range hits {
		tb.Put(k, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(hits[i%len(hits)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkTableLookupMiss is the raw probe miss path (hash + one empty
// or early-rejected chain).
func BenchmarkTableLookupMiss(b *testing.B) {
	hits, misses := benchKeys(1024)
	tb := New[int](flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst), len(hits))
	for i, k := range hits {
		tb.Put(k, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(misses[i%len(misses)]); ok {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkMapBaselineLookupHit is the pre-flowtable idiom every tier
// used: Key.Apply(mask) copy, then a Go map probe hashing the full
// 80-byte key.
func BenchmarkMapBaselineLookupHit(b *testing.B) {
	mask := flow.ExactFields(flow.FieldIPDst, flow.FieldTpDst)
	hits, _ := benchKeys(1024)
	m := make(map[flow.Key]int, len(hits))
	for i, k := range hits {
		m[k.Apply(mask)] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m[hits[i%len(hits)].Apply(mask)]; !ok {
			b.Fatal("miss")
		}
	}
}
