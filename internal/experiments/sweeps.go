package experiments

import (
	"fmt"

	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
)

// Fig3 reproduces Figure 3: on the OLS pipeline, increasing the number of
// cache tables K (1 = Megaflow-equivalent single table) cuts both cache
// misses and cache entries, at fixed per-table capacity.
func Fig3(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	w, err := p.workloadFor(pipelines.OLS)
	if err != nil {
		return nil, err
	}
	trace := sim.BuildTrace(w, p.NumFlows, traffic.HighLocality, p.Seed+2)
	t := &stats.Table{
		Title:   "Figure 3: misses and entries vs cache tables K (OLS, high locality)",
		Headers: []string{"K", "misses", "entries", "hit%"},
	}
	for k := 1; k <= p.GFTables; k++ {
		cfg := p.gfConfig()
		cfg.NumTables = k
		res, err := sim.Run(w, trace, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, res.Misses, res.Entries, 100*res.HitRate())
	}
	return t, nil
}

// TableSweep holds the shared runs behind Figures 14 and 15: misses and
// entries as the number of Gigaflow tables grows from 2 to 5 with a large
// (100K) per-table limit, for every pipeline in both localities.
type TableSweep struct {
	Params Params
	Rows   []TableSweepRow
}

// TableSweepRow is one (pipeline, locality, K) measurement.
type TableSweepRow struct {
	Pipeline string
	Locality traffic.Locality
	K        int
	Misses   uint64
	Entries  int
}

// RunTableSweep executes the §6.3.1 table-count sweep.
func RunTableSweep(p Params) (*TableSweep, error) {
	p = p.withDefaults()
	out := &TableSweep{Params: p}
	for _, spec := range p.Pipelines {
		w, err := p.workloadFor(spec)
		if err != nil {
			return nil, err
		}
		for _, loc := range []traffic.Locality{traffic.HighLocality, traffic.LowLocality} {
			trace := sim.BuildTrace(w, p.NumFlows, loc, p.Seed+2)
			for k := 2; k <= 5; k++ {
				cfg := p.gfConfig()
				cfg.NumTables = k
				cfg.TableCapacity = 100000
				res, err := sim.Run(w, trace, cfg)
				if err != nil {
					return nil, err
				}
				out.Rows = append(out.Rows, TableSweepRow{
					Pipeline: spec.Name, Locality: loc, K: k,
					Misses: res.Misses, Entries: res.Entries,
				})
			}
		}
	}
	return out, nil
}

// Fig14 renders cache misses vs number of Gigaflow tables.
func (s *TableSweep) Fig14() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 14: cache misses vs Gigaflow tables (100K entries/table)",
		Headers: []string{"pipeline", "locality", "K=2", "K=3", "K=4", "K=5"},
	}
	s.render(t, func(r TableSweepRow) any { return r.Misses })
	return t
}

// Fig15 renders cache entries vs number of Gigaflow tables.
func (s *TableSweep) Fig15() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 15: cache entries vs Gigaflow tables (100K entries/table)",
		Headers: []string{"pipeline", "locality", "K=2", "K=3", "K=4", "K=5"},
	}
	s.render(t, func(r TableSweepRow) any { return r.Entries })
	return t
}

func (s *TableSweep) render(t *stats.Table, metric func(TableSweepRow) any) {
	type key struct {
		pipe string
		loc  traffic.Locality
	}
	byCell := map[key][]any{}
	var order []key
	for _, r := range s.Rows {
		k := key{r.Pipeline, r.Locality}
		if _, ok := byCell[k]; !ok {
			order = append(order, k)
		}
		byCell[k] = append(byCell[k], metric(r))
	}
	for _, k := range order {
		cells := append([]any{k.pipe, k.loc.String()}, byCell[k]...)
		t.AddRow(cells...)
	}
}

// Fig19 reproduces Appendix A: slowpath misses per core as the vSwitch is
// given more CPU cores (RSS-distributed), for both caches.
func Fig19(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	spec := p.Pipelines[0]
	w, err := p.workloadFor(spec)
	if err != nil {
		return nil, err
	}
	trace := sim.BuildTrace(w, p.NumFlows, traffic.HighLocality, p.Seed+2)
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 19: misses per core vs CPU cores (%s, high locality)", spec.Name),
		Headers: []string{"cache", "cores", "misses/core", "total Mcycles"},
	}
	for _, kind := range []sim.Config{p.gfConfig(), p.mfConfig()} {
		for _, cores := range []int{1, 2, 4, 8} {
			cfg := kind
			cfg.Cores = cores
			res, err := sim.Run(w, trace, cfg)
			if err != nil {
				return nil, err
			}
			var maxMisses uint64
			for _, c := range res.PerCore {
				if c.Misses > maxMisses {
					maxMisses = c.Misses
				}
			}
			t.AddRow(cfg.Kind.String(), cores, maxMisses, float64(res.Cycles.Total())/1e6)
		}
	}
	return t, nil
}
