// Package experiments contains the reproduction harness for every table
// and figure in the paper's evaluation (§6). Each experiment builds its
// workload via Pipebench, drives the simulator, and renders the same rows
// or series the paper reports. The gigabench command and the repository's
// top-level benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"

	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
)

// Params scales an experiment. The zero value uses paper-scale defaults;
// tests and benchmarks shrink NumFlows/NumChains for speed.
type Params struct {
	Seed      int64
	NumFlows  int // unique flows in the trace (paper: 100,000)
	NumChains int // installed rule chains (0: pipebench paper default)

	GFTables   int // K (paper: 4)
	GFTableCap int // per-table entries (paper: 8K)
	MFCap      int // Megaflow entries (paper: 32K)

	// Pipelines restricts the pipeline set (default: all five).
	Pipelines []*pipelines.Spec
}

func (p Params) withDefaults() Params {
	if p.NumFlows == 0 {
		p.NumFlows = 100000
	}
	if p.GFTables == 0 {
		p.GFTables = 4
	}
	if p.GFTableCap == 0 {
		p.GFTableCap = 8192
	}
	if p.MFCap == 0 {
		p.MFCap = 32768
	}
	if len(p.Pipelines) == 0 {
		p.Pipelines = pipelines.All()
	}
	return p
}

// workloadFor builds (and memoizes nothing — callers reuse) the Pipebench
// workload for one pipeline at these params.
func (p Params) workloadFor(spec *pipelines.Spec) (*pipebench.Workload, error) {
	cfg := pipebench.PaperConfig(spec, p.Seed)
	if p.NumChains > 0 {
		cfg.NumChains = p.NumChains
	}
	return pipebench.Generate(cfg)
}

// gfConfig returns the Gigaflow simulator configuration.
func (p Params) gfConfig() sim.Config {
	return sim.Config{Kind: sim.Gigaflow, NumTables: p.GFTables, TableCapacity: p.GFTableCap, Offloaded: true, Seed: p.Seed}
}

// mfConfig returns the Megaflow simulator configuration.
func (p Params) mfConfig() sim.Config {
	return sim.Config{Kind: sim.Megaflow, MegaflowCapacity: p.MFCap, Offloaded: true, Seed: p.Seed}
}

// Cell is one (pipeline, locality) end-to-end comparison.
type Cell struct {
	Pipeline string
	Locality traffic.Locality
	Packets  int
	GF, MF   *sim.Result
}

// EndToEnd holds the shared runs behind Figures 8–13 and Table 2: for each
// pipeline and locality, one Gigaflow (K×cap) and one Megaflow (MFCap) run
// over an identical trace.
type EndToEnd struct {
	Params Params
	Cells  []Cell
}

// RunEndToEnd executes the §6.2 experiment grid.
func RunEndToEnd(p Params) (*EndToEnd, error) {
	p = p.withDefaults()
	out := &EndToEnd{Params: p}
	for _, spec := range p.Pipelines {
		w, err := p.workloadFor(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", spec.Name, err)
		}
		for _, loc := range []traffic.Locality{traffic.HighLocality, traffic.LowLocality} {
			trace := sim.BuildTrace(w, p.NumFlows, loc, p.Seed+2)
			gf, err := sim.Run(w, trace, p.gfConfig())
			if err != nil {
				return nil, err
			}
			mf, err := sim.Run(w, trace, p.mfConfig())
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Cell{
				Pipeline: spec.Name, Locality: loc, Packets: len(trace), GF: gf, MF: mf,
			})
		}
	}
	return out, nil
}

// Fig8 renders end-to-end cache hit rates: Gigaflow (KxC) vs Megaflow in
// high/low locality environments.
func (e *EndToEnd) Fig8() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 8: end-to-end cache hit rate (%)",
		Headers: []string{"pipeline", "locality", "gigaflow", "megaflow", "improvement"},
	}
	for _, c := range e.Cells {
		gf, mf := 100*c.GF.HitRate(), 100*c.MF.HitRate()
		t.AddRow(c.Pipeline, c.Locality.String(), gf, mf, stats.Ratio(gf-mf, mf))
	}
	return t
}

// Fig9 renders end-to-end cache misses.
func (e *EndToEnd) Fig9() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 9: end-to-end cache misses",
		Headers: []string{"pipeline", "locality", "packets", "gigaflow", "megaflow", "reduction"},
	}
	for _, c := range e.Cells {
		t.AddRow(c.Pipeline, c.Locality.String(), c.Packets,
			c.GF.Misses, c.MF.Misses,
			stats.Ratio(float64(c.MF.Misses)-float64(c.GF.Misses), float64(c.MF.Misses)))
	}
	return t
}

// Fig10 renders cache entries used (cache utilisation).
func (e *EndToEnd) Fig10() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 10: cache entries used",
		Headers: []string{"pipeline", "locality", "gf entries", "gf util%", "mf entries", "mf util%"},
	}
	for _, c := range e.Cells {
		t.AddRow(c.Pipeline, c.Locality.String(),
			c.GF.Entries, 100*float64(c.GF.Entries)/float64(c.GF.Capacity),
			c.MF.Entries, 100*float64(c.MF.Entries)/float64(c.MF.Capacity))
	}
	return t
}

// Fig11 renders the sub-traversal sharing frequency (mean traversals
// installed per Gigaflow entry).
func (e *EndToEnd) Fig11() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 11: sub-traversal sharing frequency (mean installs/entry)",
		Headers: []string{"pipeline", "locality", "sharing"},
	}
	for _, c := range e.Cells {
		t.AddRow(c.Pipeline, c.Locality.String(), c.GF.MeanSharing)
	}
	return t
}

// Fig12 renders mean end-to-end per-packet latency.
func (e *EndToEnd) Fig12() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 12: end-to-end latency (µs, mean | p99)",
		Headers: []string{"pipeline", "locality", "gf mean", "gf p99", "mf mean", "mf p99", "improvement"},
	}
	for _, c := range e.Cells {
		gf, mf := c.GF.Latency.Mean()/1000, c.MF.Latency.Mean()/1000
		t.AddRow(c.Pipeline, c.Locality.String(),
			gf, c.GF.Latency.Quantile(0.99)/1000,
			mf, c.MF.Latency.Quantile(0.99)/1000,
			stats.Ratio(mf-gf, mf))
	}
	return t
}

// Fig13 renders the slowpath CPU-cycle breakdown per pipeline (high
// locality cells): userspace forwarding vs partitioning vs rule
// generation, normalised per miss.
func (e *EndToEnd) Fig13() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 13: vSwitch CPU cycle breakdown (cycles per miss)",
		Headers: []string{"pipeline", "cache", "pipeline-cycles", "partition", "rulegen", "overhead%"},
	}
	for _, c := range e.Cells {
		if c.Locality != traffic.HighLocality {
			continue
		}
		for _, r := range []*sim.Result{c.GF, c.MF} {
			if r.Misses == 0 {
				continue
			}
			per := func(v int64) float64 { return float64(v) / float64(r.Misses) }
			over := 100 * float64(r.Cycles.Partition+r.Cycles.RuleGen) / float64(r.Cycles.Pipeline)
			t.AddRow(c.Pipeline, r.Config.Kind.String(),
				per(r.Cycles.Pipeline), per(r.Cycles.Partition), per(r.Cycles.RuleGen), over)
		}
	}
	return t
}

// Table2 renders the maximum rule-space coverage comparison.
func (e *EndToEnd) Table2() *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: rule-space coverage (high locality)",
		Headers: []string{"pipeline", "megaflow", "gigaflow", "factor"},
	}
	for _, c := range e.Cells {
		if c.Locality != traffic.HighLocality {
			continue
		}
		factor := float64(c.GF.Coverage) / float64(c.MF.Coverage)
		t.AddRow(c.Pipeline, c.MF.Coverage, c.GF.Coverage, factor)
	}
	return t
}
