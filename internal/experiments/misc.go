package experiments

import (
	"gigaflow/internal/classbench"
	"gigaflow/internal/gigaflow"
	"gigaflow/internal/pipebench"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/sim"
	"gigaflow/internal/stats"
	"gigaflow/internal/traffic"
)

// Fig4 reproduces Figure 4: the average number of rules sharing a k-field
// header sub-tuple in a 200K-rule ClassBench-style ruleset, for k = 5..1.
func Fig4(p Params) *stats.Table {
	numRules := 200000
	if p.NumFlows != 0 && p.NumFlows < 100000 {
		numRules = 20000 // reduced-scale mode for quick benches
	}
	rules := classbench.Generate(classbench.Config{Personality: classbench.ACL, Seed: p.Seed, NumRules: numRules})
	sh := classbench.Sharing(rules)
	t := &stats.Table{
		Title:   "Figure 4: avg rules sharing a k-field sub-tuple (ClassBench-style ACL)",
		Headers: []string{"matched fields", "avg sharing"},
	}
	for k := 5; k >= 1; k-- {
		t.AddRow(k, sh[k])
	}
	return t
}

// Table1 renders the pipeline inventory.
func Table1() *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: real-world vSwitch pipelines",
		Headers: []string{"pipeline", "tables", "traversals", "description"},
	}
	for _, s := range pipelines.All() {
		t.AddRow(s.Name, s.NumTables(), s.NumTraversals(), s.Description)
	}
	return t
}

// Fig16 reproduces Figure 16: disjoint partitioning (DP) vs random (RND)
// vs the idealised 1-1 mapping, on the OLS pipeline.
func Fig16(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	w, err := p.workloadFor(pipelines.OLS)
	if err != nil {
		return nil, err
	}
	trace := sim.BuildTrace(w, p.NumFlows, traffic.HighLocality, p.Seed+2)

	// Megaflow baseline for the miss-reduction column.
	mf, err := sim.Run(w, trace, p.mfConfig())
	if err != nil {
		return nil, err
	}

	t := &stats.Table{
		Title:   "Figure 16: partitioning schemes on OLS (vs Megaflow misses)",
		Headers: []string{"scheme", "tables", "misses", "miss reduction", "entries"},
	}
	t.AddRow("megaflow", 1, mf.Misses, "-", mf.Entries)

	oneToOneTables := 0
	for _, tr := range pipelines.OLS.Traversals {
		if len(tr.Tables) > oneToOneTables {
			oneToOneTables = len(tr.Tables)
		}
	}
	schemes := []struct {
		scheme gigaflow.Scheme
		tables int
	}{
		{gigaflow.SchemeRandom, p.GFTables},
		{gigaflow.SchemeDisjoint, p.GFTables},
		{gigaflow.SchemeOneToOne, oneToOneTables},
		// Beyond the paper's figure: the §7 profile-guided partitioner.
		{gigaflow.SchemeProfile, p.GFTables},
	}
	for _, s := range schemes {
		cfg := p.gfConfig()
		cfg.Scheme = s.scheme
		cfg.NumTables = s.tables
		res, err := sim.Run(w, trace, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.scheme.String(), s.tables, res.Misses,
			stats.Ratio(float64(mf.Misses)-float64(res.Misses), float64(mf.Misses)),
			res.Entries)
	}
	return t, nil
}

// Fig17 reproduces Figure 17: Megaflow and Gigaflow as CPU-resident caches
// under the TSS and NuevoMatch search algorithms (PSC pipeline). The
// workload keeps ClassBench's native prefix diversity, the
// classifier-bound regime where search algorithms matter.
func Fig17(p Params) (*stats.Table, error) {
	p = p.withDefaults()
	cfg := pipebench.PaperConfig(pipelines.PSC, p.Seed)
	cfg.NativePrefixes = true
	if p.NumChains > 0 {
		cfg.NumChains = p.NumChains
	}
	w, err := pipebench.Generate(cfg)
	if err != nil {
		return nil, err
	}
	trace := sim.BuildTrace(w, p.NumFlows, traffic.HighLocality, p.Seed+2)
	t := &stats.Table{
		Title:   "Figure 17: TSS vs NuevoMatch, CPU-resident caches (PSC, high locality)",
		Headers: []string{"config", "hit%", "mean latency µs", "p99 µs"},
	}
	configs := []sim.Config{
		{Kind: sim.Megaflow, MegaflowCapacity: p.MFCap, Search: sim.TSS},
		{Kind: sim.Megaflow, MegaflowCapacity: p.MFCap, Search: sim.NM},
		{Kind: sim.Gigaflow, NumTables: p.GFTables, TableCapacity: p.GFTableCap, Search: sim.TSS},
		{Kind: sim.Gigaflow, NumTables: p.GFTables, TableCapacity: p.GFTableCap, Search: sim.NM},
	}
	for _, cfg := range configs {
		res, err := sim.Run(w, trace, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.Label(), 100*res.HitRate(), res.Latency.Mean()/1000, res.Latency.Quantile(0.99)/1000)
	}
	return t, nil
}

// Fig18Result carries the dynamic-workload hit-rate series for both caches.
type Fig18Result struct {
	GF, MF stats.Series
	// ArrivalSec is when the second workload starts.
	ArrivalSec float64
}

// Fig18 reproduces Figure 18: a second workload of fresh flows arrives
// mid-run; Megaflow's hit rate collapses while Gigaflow's rule-space
// coverage absorbs the newcomers (PSC, high locality).
func Fig18(p Params) (*Fig18Result, error) {
	p = p.withDefaults()
	w, err := p.workloadFor(pipelines.PSC)
	if err != nil {
		return nil, err
	}
	half := p.NumFlows / 2
	const arrival = 300_000_000_000 // second workload at t = 5 min

	// The two workloads draw from disjoint halves of the chain population:
	// the second is genuinely new traffic the cache has never seen. It
	// arrives compactly (60 s) against the first's 240 s ramp, producing
	// the paper's cliff.
	mid := len(w.Chains) / 2
	tc1 := traffic.Config{Seed: p.Seed + 2, NumFlows: half, SpreadNs: 240_000_000_000}
	tc2 := traffic.Config{Seed: p.Seed + 3, NumFlows: half, SpreadNs: 60_000_000_000}
	f1 := traffic.GenerateFlows(tc1, w.PickerRange(traffic.HighLocality, 0, mid), w.SampleKey)
	f2 := traffic.GenerateFlows(tc2, w.PickerRange(traffic.HighLocality, mid, len(w.Chains)), w.SampleKey)
	f2 = traffic.ShiftStarts(f2, arrival)
	trace := traffic.Merge(traffic.Expand(tc1, f1), traffic.Expand(tc2, f2))

	sample := int64(15_000_000_000)
	gfCfg := p.gfConfig()
	gfCfg.SampleEveryNs = sample
	mfCfg := p.mfConfig()
	mfCfg.SampleEveryNs = sample

	gf, err := sim.Run(w, trace, gfCfg)
	if err != nil {
		return nil, err
	}
	mf, err := sim.Run(w, trace, mfCfg)
	if err != nil {
		return nil, err
	}
	return &Fig18Result{GF: gf.Series, MF: mf.Series, ArrivalSec: float64(arrival) / 1e9}, nil
}

// Table renders the Fig. 18 series side by side.
func (r *Fig18Result) Table() *stats.Table {
	t := &stats.Table{
		Title:   "Figure 18: hit rate over time; 2nd workload arrives at t=300s (PSC)",
		Headers: []string{"t (s)", "gigaflow hit%", "megaflow hit%"},
	}
	n := len(r.GF.Points)
	if len(r.MF.Points) < n {
		n = len(r.MF.Points)
	}
	for i := 0; i < n; i++ {
		t.AddRow(r.GF.Points[i].T, 100*r.GF.Points[i].V, 100*r.MF.Points[i].V)
	}
	return t
}

// Sec636 reproduces §6.3.6: per-deployment cache-hit latencies and the
// Gigaflow-vs-Megaflow revalidation comparison on the OLS pipeline.
func Sec636(p Params) (*stats.Table, *stats.Table, error) {
	p = p.withDefaults()
	lat := &stats.Table{
		Title:   "§6.3.6: cache-hit latency by deployment",
		Headers: []string{"configuration", "latency µs"},
	}
	for _, row := range sim.LatencyTable(sim.DefaultCostModel()) {
		lat.AddRow(row.Name, float64(row.LatencyNs)/1000)
	}

	w, err := p.workloadFor(pipelines.OLS)
	if err != nil {
		return nil, nil, err
	}
	gf, mf, err := sim.RevalidationExperiment(w, p.NumFlows, p.GFTables, p.GFTableCap, p.MFCap, sim.DefaultCostModel())
	if err != nil {
		return nil, nil, err
	}
	reval := &stats.Table{
		Title:   "§6.3.6: full-cache revalidation after a rule update (OLS)",
		Headers: []string{"cache", "entries", "replayed lookups", "time ms"},
	}
	reval.AddRow(mf.Label, mf.Entries, mf.Work, mf.TimeMs)
	reval.AddRow(gf.Label, gf.Entries, gf.Work, gf.TimeMs)
	return lat, reval, nil
}
