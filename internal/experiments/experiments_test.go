package experiments

import (
	"fmt"
	"strings"
	"testing"

	"gigaflow/internal/pipelines"
	"gigaflow/internal/traffic"
)

// quick returns reduced-scale params for fast tests.
func quick() Params {
	return Params{
		Seed:      1,
		NumFlows:  8000,
		NumChains: 12000,
		Pipelines: []*pipelines.Spec{pipelines.PSC, pipelines.OFD},
	}
}

func TestEndToEndShapes(t *testing.T) {
	e, err := RunEndToEnd(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Cells) != 4 { // 2 pipelines × 2 localities
		t.Fatalf("cells = %d", len(e.Cells))
	}
	for _, c := range e.Cells {
		if c.GF.Packets == 0 || c.MF.Packets != c.GF.Packets {
			t.Fatalf("%s/%s: packet counts inconsistent", c.Pipeline, c.Locality)
		}
		// The headline reproduction claims, per cell:
		if c.GF.HitRate() < c.MF.HitRate() {
			t.Errorf("%s/%s: gigaflow hit %.3f below megaflow %.3f",
				c.Pipeline, c.Locality, c.GF.HitRate(), c.MF.HitRate())
		}
		if c.GF.Coverage <= uint64(c.GF.Entries) && c.GF.MeanSharing > 1.01 {
			t.Errorf("%s/%s: shared entries but no coverage amplification", c.Pipeline, c.Locality)
		}
	}

	// All six tables must render with one row per cell (or per pipeline).
	for _, tab := range []interface{ Render() string }{
		e.Fig8(), e.Fig9(), e.Fig10(), e.Fig11(), e.Fig12(), e.Fig13(), e.Table2(),
	} {
		out := tab.Render()
		if !strings.Contains(out, "PSC") || !strings.Contains(out, "OFD") {
			t.Errorf("table missing pipelines:\n%s", out)
		}
	}
}

func TestTable2CoverageFactor(t *testing.T) {
	e, err := RunEndToEnd(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range e.Cells {
		if c.Locality != traffic.HighLocality {
			continue
		}
		if c.GF.Coverage < 10*c.MF.Coverage {
			t.Errorf("%s: coverage %d not ≫ megaflow %d", c.Pipeline, c.GF.Coverage, c.MF.Coverage)
		}
	}
}

func TestFig3MonotoneImprovement(t *testing.T) {
	p := quick()
	tab, err := Fig3(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// K=4 must beat K=1 (Megaflow-equivalent) on misses.
	var k1, k4 uint64
	if _, err := fmtSscan(tab.Rows[0][1], &k1); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(tab.Rows[3][1], &k4); err != nil {
		t.Fatal(err)
	}
	if k4 > k1 {
		t.Errorf("misses did not fall with K: %v", tab.Rows)
	}
}

func TestFig4Monotone(t *testing.T) {
	tab := Fig4(Params{Seed: 1, NumFlows: 8000})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTable1MatchesSpecs(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, name := range []string{"OFD", "PSC", "OLS", "ANT", "OTL", "30", "23"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %q:\n%s", name, out)
		}
	}
}

func TestFig16SchemeOrdering(t *testing.T) {
	p := quick()
	tab, err := Fig16(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row order: megaflow, RND, DP, 1-1, PROF. DP must beat RND on misses.
	rnd, dp := tab.Rows[1], tab.Rows[2]
	if rnd[0] != "RND" || dp[0] != "DP" {
		t.Fatalf("unexpected row order: %v", tab.Rows)
	}
	var rndMisses, dpMisses uint64
	if _, err := fmtSscan(rnd[2], &rndMisses); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(dp[2], &dpMisses); err != nil {
		t.Fatal(err)
	}
	if dpMisses > rndMisses {
		t.Errorf("DP misses %d exceed RND %d", dpMisses, rndMisses)
	}
}

func TestFig17Runs(t *testing.T) {
	tab, err := Fig17(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	for _, want := range []string{"megaflow", "gigaflow", "TSS", "NM"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 17 missing %q:\n%s", want, out)
		}
	}
}

func TestFig18MegaflowDipsMore(t *testing.T) {
	p := quick()
	p.NumFlows = 12000
	r, err := Fig18(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GF.Points) < 10 || len(r.MF.Points) < 10 {
		t.Fatalf("series too short: %d/%d", len(r.GF.Points), len(r.MF.Points))
	}
	// After the arrival, Gigaflow's hit rate must stay at or above
	// Megaflow's (the coverage argument).
	gfPost, mfPost, n := 0.0, 0.0, 0
	for i := range r.GF.Points {
		if r.GF.Points[i].T > r.ArrivalSec && i < len(r.MF.Points) {
			gfPost += r.GF.Points[i].V
			mfPost += r.MF.Points[i].V
			n++
		}
	}
	if n == 0 {
		t.Fatal("no post-arrival samples")
	}
	if gfPost/float64(n) < mfPost/float64(n) {
		t.Errorf("post-arrival: gigaflow %.3f below megaflow %.3f", gfPost/float64(n), mfPost/float64(n))
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestSec636(t *testing.T) {
	lat, reval, err := Sec636(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(lat.Rows) != 6 || len(reval.Rows) != 2 {
		t.Fatalf("rows = %d/%d", len(lat.Rows), len(reval.Rows))
	}
}

func TestFig19(t *testing.T) {
	p := quick()
	p.Pipelines = []*pipelines.Spec{pipelines.PSC}
	tab, err := Fig19(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 { // 2 caches × 4 core counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTableSweep(t *testing.T) {
	p := quick()
	p.Pipelines = []*pipelines.Spec{pipelines.PSC}
	s, err := RunTableSweep(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 8 { // 1 pipeline × 2 localities × K=2..5
		t.Fatalf("rows = %d", len(s.Rows))
	}
	if len(s.Fig14().Rows) != 2 || len(s.Fig15().Rows) != 2 {
		t.Error("fig 14/15 render wrong")
	}
}

// fmtSscan parses a table-cell string into v.
func fmtSscan(s string, v any) (int, error) {
	return fmt.Sscan(s, v)
}
