package upcall

import (
	"context"
	"sync"
	"testing"
	"time"

	"gigaflow/internal/flow"
)

func testKey(n uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldIPSrc, n)
	k.Set(flow.FieldTpDst, 80)
	return k
}

func TestTableParkDedup(t *testing.T) {
	tb := NewTable[int]()
	kA, kB := testKey(1), testKey(2)

	m, created := tb.Park(kA, 3, 100, 10)
	if !created {
		t.Fatalf("first park of A: created=false")
	}
	if m.Key != kA || m.Shard != 3 || m.EnqueuedNs != 100 {
		t.Fatalf("miss fields: %+v", m)
	}
	if m2, created := tb.Park(kA, 3, 200, 11); created || m2 != m {
		t.Fatalf("follower park: created=%v same=%v", created, m2 == m)
	}
	if _, created := tb.Park(kB, 3, 300, 20); !created {
		t.Fatalf("park of B: created=false")
	}
	if tb.Len() != 2 || tb.Parked() != 3 {
		t.Fatalf("Len=%d Parked=%d, want 2/3", tb.Len(), tb.Parked())
	}

	got := tb.Remove(kA)
	if got != m {
		t.Fatalf("Remove returned wrong entry")
	}
	if len(got.Payloads) != 2 || got.Payloads[0] != 10 || got.Payloads[1] != 11 {
		t.Fatalf("payloads out of order: %v", got.Payloads)
	}
	if tb.Remove(kA) != nil {
		t.Fatalf("second Remove should be nil")
	}
	if tb.Len() != 1 || tb.Parked() != 1 {
		t.Fatalf("after remove: Len=%d Parked=%d, want 1/1", tb.Len(), tb.Parked())
	}

	st := tb.Stats()
	if st.Upcalls != 2 || st.Deduped != 1 || st.Released != 2 {
		t.Fatalf("stats %+v, want Upcalls=2 Deduped=1 Released=2", st)
	}
}

func TestTableDrain(t *testing.T) {
	tb := NewTable[string]()
	for i := uint64(0); i < 5; i++ {
		tb.Park(testKey(i), 0, 0, "p")
		tb.Park(testKey(i), 0, 0, "q")
	}
	drained := 0
	payloads := 0
	tb.Drain(func(m *Miss[string]) {
		drained++
		payloads += len(m.Payloads)
	})
	if drained != 5 || payloads != 10 {
		t.Fatalf("drained %d entries / %d payloads, want 5/10", drained, payloads)
	}
	if tb.Len() != 0 || tb.Parked() != 0 {
		t.Fatalf("table not empty after drain: Len=%d Parked=%d", tb.Len(), tb.Parked())
	}
	if st := tb.Stats(); st.Released != 10 {
		t.Fatalf("Released=%d, want 10", st.Released)
	}
}

func TestQueueOverflow(t *testing.T) {
	q := NewQueue[int](2)
	if q.Cap() != 2 {
		t.Fatalf("Cap=%d, want 2", q.Cap())
	}
	a, b, c := &Miss[int]{}, &Miss[int]{}, &Miss[int]{}
	if !q.TryEnqueue(a) || !q.TryEnqueue(b) {
		t.Fatalf("enqueue into empty queue refused")
	}
	if q.TryEnqueue(c) {
		t.Fatalf("enqueue into full queue accepted")
	}
	if q.Depth() != 2 || q.Enqueued() != 2 || q.Overflows() != 1 {
		t.Fatalf("Depth=%d Enqueued=%d Overflows=%d, want 2/2/1",
			q.Depth(), q.Enqueued(), q.Overflows())
	}
}

// TestEngineDrains spins the engine with concurrent producers and checks
// every miss reaches the handler exactly once, stamped, and that Wait
// returns promptly after cancellation.
func TestEngineDrains(t *testing.T) {
	const producers, perProducer = 4, 50
	q := NewQueue[int](producers * perProducer)

	var mu sync.Mutex
	seen := make(map[*Miss[int]]int)
	maxBatch := 0
	h := func(ctx context.Context, batch []*Miss[int]) {
		mu.Lock()
		if len(batch) > maxBatch {
			maxBatch = len(batch)
		}
		for _, m := range batch {
			seen[m]++
			if m.DequeuedNs == 0 {
				t.Error("miss handed off without a dequeue stamp")
			}
		}
		mu.Unlock()
	}
	e := NewEngine(q, 2, 8, h)
	ctx, cancel := context.WithCancel(context.Background())
	e.Start(ctx)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m := &Miss[int]{Key: testKey(uint64(p*1000 + i)), EnqueuedNs: 1}
				for !q.TryEnqueue(m) {
					time.Sleep(time.Microsecond)
				}
			}
		}(p)
	}
	wg.Wait()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.Drained() == producers*perProducer {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine drained %d/%d misses", e.Drained(), producers*perProducer)
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	e.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != producers*perProducer {
		t.Fatalf("handler saw %d distinct misses, want %d", len(seen), producers*perProducer)
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("miss %v handled %d times", m.Key, n)
		}
	}
	if maxBatch > 8 {
		t.Fatalf("batch of %d exceeded the bound of 8", maxBatch)
	}
	if e.Batches() == 0 || e.Batches() > e.Drained() {
		t.Fatalf("Batches=%d Drained=%d out of range", e.Batches(), e.Drained())
	}
}

// TestEngineCancelAbandonsQueue: misses still queued at cancellation are
// never handled, and Wait does not hang.
func TestEngineCancelAbandonsQueue(t *testing.T) {
	q := NewQueue[int](8)
	handled := make(chan struct{}, 8)
	e := NewEngine(q, 1, 4, func(ctx context.Context, batch []*Miss[int]) {
		for range batch {
			handled <- struct{}{}
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before Start: the goroutine may exit immediately
	e.Start(ctx)
	q.TryEnqueue(&Miss[int]{})
	done := make(chan struct{})
	go func() { e.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after cancellation")
	}
}

func TestEngineClamps(t *testing.T) {
	e := NewEngine(NewQueue[int](0), 0, 0, func(context.Context, []*Miss[int]) {})
	if e.workers != 1 || e.batch != 1 {
		t.Fatalf("workers=%d batch=%d, want 1/1", e.workers, e.batch)
	}
	if NewQueue[int](-3).Cap() != 1 {
		t.Fatalf("negative depth not clamped to 1")
	}
}
