package upcall

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Queue is the bounded miss queue between the datapath shards and the
// engine: many shard producers, Workers engine consumers. Enqueue never
// blocks — a full queue is the datapath's signal to apply its overflow
// policy (process the miss inline, or drop the packet) rather than stall
// behind the slow path, which is the head-of-line blocking this package
// exists to remove.
type Queue[P any] struct {
	ch        chan *Miss[P]
	enqueued  atomic.Uint64
	overflows atomic.Uint64
}

// NewQueue builds a miss queue holding up to depth pending upcalls.
func NewQueue[P any](depth int) *Queue[P] {
	if depth < 1 {
		depth = 1
	}
	return &Queue[P]{ch: make(chan *Miss[P], depth)}
}

// TryEnqueue offers m to the engine without blocking. False means the
// queue was full; the miss was not seen by the engine and the caller
// must undo the park and apply its overflow policy.
func (q *Queue[P]) TryEnqueue(m *Miss[P]) bool {
	select {
	case q.ch <- m:
		q.enqueued.Add(1)
		return true
	default:
		q.overflows.Add(1)
		return false
	}
}

// Depth reports the number of misses currently queued.
func (q *Queue[P]) Depth() int { return len(q.ch) }

// Cap reports the queue bound.
func (q *Queue[P]) Cap() int { return cap(q.ch) }

// Enqueued reports the number of misses ever accepted.
func (q *Queue[P]) Enqueued() uint64 { return q.enqueued.Load() }

// Overflows reports the number of enqueue attempts refused on a full
// queue.
func (q *Queue[P]) Overflows() uint64 { return q.overflows.Load() }

// Handler resolves one dequeued batch of misses: in the service it runs
// the pipeline traversal for each, then hands every miss back to its
// shard. It runs on an engine goroutine and must honor ctx so shutdown
// can never hang on a stalled hand-off.
type Handler[P any] func(ctx context.Context, batch []*Miss[P])

// Engine owns the dedicated slow-path goroutines. Each drains the miss
// queue, gathers opportunistic batches of up to Batch misses (so one
// wakeup amortizes across a burst, and the handler can batch rule
// installs), stamps their dequeue time, and runs the handler. Goroutines
// exit when ctx is cancelled; Wait blocks until all have.
type Engine[P any] struct {
	q       *Queue[P]
	workers int
	batch   int
	handler Handler[P]

	wg      sync.WaitGroup
	drained atomic.Uint64 // misses handed to the handler
	batches atomic.Uint64 // handler invocations
}

// NewEngine builds an engine of workers goroutines draining q in batches
// of up to batch misses. Workers and batch are clamped to at least 1.
func NewEngine[P any](q *Queue[P], workers, batch int, h Handler[P]) *Engine[P] {
	if workers < 1 {
		workers = 1
	}
	if batch < 1 {
		batch = 1
	}
	return &Engine[P]{q: q, workers: workers, batch: batch, handler: h}
}

// Start launches the drain goroutines. Call once.
func (e *Engine[P]) Start(ctx context.Context) {
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.drain(ctx)
	}
}

// Wait blocks until every drain goroutine has exited (after the ctx
// passed to Start is cancelled).
func (e *Engine[P]) Wait() { e.wg.Wait() }

// Drained reports the number of misses handed to the handler.
func (e *Engine[P]) Drained() uint64 { return e.drained.Load() }

// Batches reports the number of handler invocations.
func (e *Engine[P]) Batches() uint64 { return e.batches.Load() }

// drain is the engine goroutine body: block for one miss, opportunistically
// gather the rest of the burst up to the batch bound, stamp and hand off.
// Misses still queued when ctx is cancelled are abandoned — by then the
// shards are draining their pending tables and failing the parked packets
// themselves, so completing the work would deliver into dead structures.
func (e *Engine[P]) drain(ctx context.Context) {
	defer e.wg.Done()
	buf := make([]*Miss[P], 0, e.batch)
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-e.q.ch:
			buf = append(buf[:0], m)
		gather:
			for len(buf) < e.batch {
				select {
				case more := <-e.q.ch:
					buf = append(buf, more)
				default:
					break gather
				}
			}
			now := time.Now().UnixNano()
			for _, qm := range buf {
				qm.DequeuedNs = now
			}
			e.drained.Add(uint64(len(buf)))
			e.batches.Add(1)
			e.handler(ctx, buf)
		}
	}
}
