// Package upcall is the asynchronous slow-path offload engine: the
// datapath split an off-path SmartNIC performs between its forwarding
// cores and its accelerator complex. On a main-cache miss the datapath
// does not run the µs-scale pipeline traversal inline — it *parks* the
// packet, records the miss in a per-shard pending-flow table (one entry
// per flow, so concurrent misses of the same flow collapse into one
// upcall), and enqueues the flow's first miss on a bounded MPMC miss
// queue. Dedicated slow-path goroutines (the Engine) drain the queue in
// batches, resolve each miss through a caller-supplied handler (pipeline
// traversal + rule install, in the service's case), and hand the
// completed misses back to the shard that parked them, which releases
// every parked packet of the flow in arrival order.
//
// The package is deliberately mechanism-only and generic over the parked
// payload type P: it knows nothing about VSwitches, batch jobs, or
// result channels. The ownership discipline mirrors the service's
// shared-nothing worker design:
//
//   - A Table belongs to one shard goroutine. Park, Remove, Drain, and
//     the stat readers must all run there.
//   - A Miss's Key, Shard, and EnqueuedNs are immutable after Park; its
//     Payloads slice is owned by the shard goroutine at all times (the
//     engine never reads it, so the shard may keep appending followers
//     while the traversal is in flight); DequeuedNs, TraverseNs,
//     Traversal, and Err are written by the engine before the miss is
//     handed back, with the hand-off channel providing the
//     happens-before edge.
//   - The Queue is the only structure shared by more than one writer;
//     it is a bounded channel plus atomic counters.
package upcall

import (
	"gigaflow/internal/flow"
	"gigaflow/internal/pipeline"
)

// Miss is one flow's pending upcall: the flow key, the shard (worker)
// that parked it, every packet of the flow parked while the upcall was
// pending, and — once the engine has resolved it — the traversal result.
type Miss[P any] struct {
	// Key is the missed flow signature. All payloads share it.
	Key flow.Key
	// Shard is the index of the shard (worker) that parked the miss;
	// completions route back to it.
	Shard int
	// EnqueuedNs is the shard's wall-clock stamp when the miss was
	// parked; with DequeuedNs it bounds the queue-wait (parked) time.
	EnqueuedNs int64
	// DequeuedNs is stamped by the engine when it picks the miss up.
	DequeuedNs int64
	// TraverseNs is the wall-clock cost of the slow-path resolution,
	// measured by the handler.
	TraverseNs int64
	// Payloads are the parked packets of this flow in arrival order:
	// Payloads[0] is the miss that created the upcall, the rest are
	// followers deduplicated against it. Owned by the shard goroutine.
	Payloads []P
	// Traversal is the slow-path result, written by the handler.
	Traversal *pipeline.Traversal
	// Err is the slow-path failure, written by the handler.
	Err error
}

// TableStats counts a pending-flow table's lifetime activity. All
// numbers are owned by the table's shard goroutine.
type TableStats struct {
	// Upcalls is the number of pending entries ever created (one per
	// flow-level miss, including entries later undone by queue overflow).
	Upcalls uint64
	// Deduped is the number of follower packets that rode an existing
	// pending entry instead of triggering their own traversal.
	Deduped uint64
	// Released is the number of parked packets handed back out of the
	// table by Remove and Drain.
	Released uint64
}

// Table is one shard's pending-flow table: at most one Miss per flow,
// with every subsequent packet of that flow appended as a follower. Not
// safe for concurrent use — it belongs to the shard goroutine.
type Table[P any] struct {
	pending map[flow.Key]*Miss[P]
	parked  int // payloads currently parked across all entries
	stats   TableStats
}

// NewTable builds an empty pending-flow table.
func NewTable[P any]() *Table[P] {
	return &Table[P]{pending: make(map[flow.Key]*Miss[P])}
}

// Park records payload p against flow k's pending upcall, creating the
// entry if this is the flow's first outstanding miss. It returns the
// entry and whether it was created — a created entry must be enqueued by
// the caller (and removed again, via Remove, if the queue refuses it).
func (t *Table[P]) Park(k flow.Key, shard int, now int64, p P) (m *Miss[P], created bool) {
	t.parked++
	if m = t.pending[k]; m != nil {
		m.Payloads = append(m.Payloads, p)
		t.stats.Deduped++
		return m, false
	}
	m = &Miss[P]{Key: k, Shard: shard, EnqueuedNs: now, Payloads: make([]P, 1, 4)}
	m.Payloads[0] = p
	t.pending[k] = m
	t.stats.Upcalls++
	return m, true
}

// Remove takes flow k's pending entry out of the table (nil if absent),
// transferring ownership of its payloads to the caller.
func (t *Table[P]) Remove(k flow.Key) *Miss[P] {
	m := t.pending[k]
	if m == nil {
		return nil
	}
	delete(t.pending, k)
	t.parked -= len(m.Payloads)
	t.stats.Released += uint64(len(m.Payloads))
	return m
}

// Drain empties the table, invoking fn for every pending entry — the
// shutdown path, where the shard fails each parked packet instead of
// waiting for completions that may never come.
func (t *Table[P]) Drain(fn func(*Miss[P])) {
	for k, m := range t.pending {
		delete(t.pending, k)
		t.parked -= len(m.Payloads)
		t.stats.Released += uint64(len(m.Payloads))
		fn(m)
	}
}

// Len reports the number of pending flows.
func (t *Table[P]) Len() int { return len(t.pending) }

// Parked reports the number of packets currently parked.
func (t *Table[P]) Parked() int { return t.parked }

// Stats returns the table's lifetime counters.
func (t *Table[P]) Stats() TableStats { return t.stats }
