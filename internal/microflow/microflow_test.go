package microflow

import (
	"testing"

	"gigaflow/internal/flow"
)

func mk(port uint64) flow.Key { return flow.Key{}.With(flow.FieldTpDst, port) }

func TestExactHitAndMiss(t *testing.T) {
	c := New(4)
	final := mk(80).With(flow.FieldEthDst, 0xbb)
	c.Insert(mk(80), final, flow.Verdict{Kind: flow.VerdictOutput, Port: 3}, 0)

	e, ok := c.Lookup(mk(80), 1)
	if !ok || e.Final != final || e.Verdict.Port != 3 {
		t.Fatalf("hit = %v, %v", e, ok)
	}
	if _, ok := c.Lookup(mk(81), 1); ok {
		t.Error("exact cache must miss on any difference")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInsertOverwrites(t *testing.T) {
	c := New(4)
	c.Insert(mk(80), mk(80), flow.Verdict{Kind: flow.VerdictOutput, Port: 1}, 0)
	c.Insert(mk(80), mk(80), flow.Verdict{Kind: flow.VerdictOutput, Port: 2}, 1)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	e, _ := c.Lookup(mk(80), 2)
	if e.Verdict.Port != 2 {
		t.Error("overwrite not visible")
	}
}

func TestLRU(t *testing.T) {
	c := New(2)
	c.Insert(mk(1), mk(1), flow.Verdict{}, 0)
	c.Insert(mk(2), mk(2), flow.Verdict{}, 1)
	c.Lookup(mk(1), 2)                        // 2 becomes LRU
	c.Insert(mk(3), mk(3), flow.Verdict{}, 3) // evicts 2
	if _, ok := c.Lookup(mk(2), 4); ok {
		t.Error("LRU entry should be gone")
	}
	if _, ok := c.Lookup(mk(1), 4); !ok {
		t.Error("recently used entry should survive")
	}
	if c.Stats().EvictLRU != 1 {
		t.Errorf("EvictLRU = %d", c.Stats().EvictLRU)
	}
}

func TestExpireIdle(t *testing.T) {
	c := New(4)
	c.Insert(mk(1), mk(1), flow.Verdict{}, 0)
	c.Insert(mk(2), mk(2), flow.Verdict{}, 50)
	if n := c.ExpireIdle(100, 60); n != 1 {
		t.Fatalf("expired %d", n)
	}
	if _, ok := c.Lookup(mk(2), 100); !ok {
		t.Error("fresh entry expired")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4)
	c.Insert(mk(1), mk(1), flow.Verdict{}, 0)
	c.Insert(mk(2), mk(2), flow.Verdict{}, 0)
	if n := c.Invalidate(); n != 2 {
		t.Fatalf("invalidated %d", n)
	}
	if c.Len() != 0 {
		t.Error("entries remain after Invalidate")
	}
	// Cache must remain usable.
	c.Insert(mk(3), mk(3), flow.Verdict{}, 1)
	if _, ok := c.Lookup(mk(3), 2); !ok {
		t.Error("cache broken after Invalidate")
	}
}

func TestCapacityChurn(t *testing.T) {
	c := New(8)
	for i := 0; i < 1000; i++ {
		c.Insert(mk(uint64(i)), mk(uint64(i)), flow.Verdict{}, int64(i))
		if c.Len() > 8 {
			t.Fatalf("capacity exceeded: %d", c.Len())
		}
	}
	// The 8 most recent keys must all be present.
	for i := 992; i < 1000; i++ {
		if _, ok := c.Lookup(mk(uint64(i)), 2000); !ok {
			t.Errorf("recent key %d missing", i)
		}
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New(0)
}
