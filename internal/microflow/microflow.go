// Package microflow implements OVS's first-level exact-match flow cache:
// one entry per exact flow signature, capturing temporal locality. It
// fronts the Megaflow (or Gigaflow) cache in the software slowpath.
package microflow

import (
	"fmt"

	"gigaflow/internal/conntrack"
	"gigaflow/internal/flow"
	"gigaflow/internal/flowtable"
)

// Entry is one exact-match cache entry: the memoized result of processing
// a specific flow signature.
type Entry struct {
	Key     flow.Key
	Final   flow.Key // flow state after all rewrites
	Verdict flow.Verdict
	Hits    uint64
	LastHit int64

	// Ct, CtEpoch, and CtDir tie a conntrack-mode entry to the connection
	// state it memoized: the entry only serves while the connection still
	// carries CtEpoch and the packet cannot transition it (the datapath's
	// fast-path guard). Nil Ct means the result is connection-independent.
	Ct      *conntrack.Conn
	CtEpoch uint64
	CtDir   conntrack.Dir

	prev, next *Entry
}

// Stats counts cache events.
type Stats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Inserts  uint64 `json:"inserts"`
	EvictLRU uint64 `json:"evict_lru"`
	Expired  uint64 `json:"expired"`
	Invalid  uint64 `json:"invalidated"` // removed by Invalidate
}

// Snapshot bundles the cache's counters and occupancy for telemetry
// export. Not safe for concurrent use with cache mutation; call from the
// goroutine driving the cache.
type Snapshot struct {
	Stats
	Len      int `json:"len"`
	Capacity int `json:"capacity"`
}

// Cache is a capacity-bounded exact-match cache with LRU replacement.
// Entries live in a full-mask fused-probe flow table (internal/flowtable),
// pre-sized to capacity so the steady state never rehashes.
type Cache struct {
	capacity int
	entries  *flowtable.Table[*Entry]
	lruHead  *Entry
	lruTail  *Entry
	stats    Stats
}

// New creates a microflow cache holding at most capacity entries.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("microflow: bad capacity %d", capacity))
	}
	return &Cache{capacity: capacity, entries: flowtable.NewExact[*Entry](capacity)}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return c.entries.Len() }

// Capacity reports the entry limit.
func (c *Cache) Capacity() int { return c.capacity }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LastHash returns the fused probe hash of the most recent Lookup: the
// flow identifier latency attribution logs for a microflow hit. Only
// meaningful immediately after the lookup, on the driving goroutine.
func (c *Cache) LastHash() uint64 { return c.entries.LastHash() }

// Snapshot captures the cache's current telemetry view.
func (c *Cache) Snapshot() Snapshot {
	return Snapshot{Stats: c.stats, Len: c.Len(), Capacity: c.capacity}
}

// Lookup finds the entry for exactly k.
//
//gf:hotpath
func (c *Cache) Lookup(k flow.Key, now int64) (*Entry, bool) {
	return c.lookupStats(k, now, &c.stats)
}

// lookupStats is the Lookup body with its counter destination injected:
// &c.stats for single lookups, a batch-local accumulator for BatchLookup.
// Entry hit counts and LRU position are per-entry state and always update
// per packet; only the cache-wide counters are redirected.
//
//gf:hotpath
func (c *Cache) lookupStats(k flow.Key, now int64, s *Stats) (*Entry, bool) {
	e, ok := c.entries.Lookup(k)
	if !ok {
		s.Misses++
		return nil, false
	}
	e.Hits++
	e.LastHit = now
	c.touch(e)
	s.Hits++
	return e, true
}

// BatchLookup accumulates lookup counters locally so a packet batch
// updates the cache-wide Stats once, in Flush, instead of once per
// packet. The zero value is a no-op accumulator whose Lookup must not be
// called; obtain usable values from Cache.BatchLookup.
type BatchLookup struct {
	c     *Cache
	delta Stats
}

// BatchLookup starts a batched lookup sequence against c.
func (c *Cache) BatchLookup() BatchLookup { return BatchLookup{c: c} }

// Lookup is Cache.Lookup with counters deferred to Flush.
//
//gf:hotpath
func (b *BatchLookup) Lookup(k flow.Key, now int64) (*Entry, bool) {
	return b.c.lookupStats(k, now, &b.delta)
}

// Flush folds the accumulated counters into the cache's Stats — the one
// stats update the whole batch pays. Safe on the zero value.
func (b *BatchLookup) Flush() {
	if b.c == nil {
		return
	}
	b.c.stats.Hits += b.delta.Hits
	b.c.stats.Misses += b.delta.Misses
	b.delta = Stats{}
}

// Insert memoizes the result of processing k. An existing entry for k is
// overwritten.
func (c *Cache) Insert(k, final flow.Key, v flow.Verdict, now int64) *Entry {
	if old, ok := c.entries.Lookup(k); ok {
		old.Final, old.Verdict, old.LastHit = final, v, now
		old.Ct, old.CtEpoch, old.CtDir = nil, 0, 0
		c.touch(old)
		return old
	}
	if c.entries.Len() >= c.capacity {
		if t := c.lruTail; t != nil {
			c.remove(t)
			c.stats.EvictLRU++
		}
	}
	e := &Entry{Key: k, Final: final, Verdict: v, LastHit: now}
	c.entries.Put(k, e)
	c.pushFront(e)
	c.stats.Inserts++
	return e
}

// InsertCt memoizes a conntrack-mode result bound to connection state:
// the entry serves only while conn still carries epoch and a packet
// cannot transition it (the datapath enforces the guard on hit). dir is
// the memoized packet's direction relative to conn.
func (c *Cache) InsertCt(k, final flow.Key, v flow.Verdict, now int64,
	conn *conntrack.Conn, epoch uint64, dir conntrack.Dir) *Entry {
	e := c.Insert(k, final, v, now)
	e.Ct, e.CtEpoch, e.CtDir = conn, epoch, dir
	return e
}

// Remove drops the entry for exactly k — the conntrack invalidation
// hook: the datapath calls it when an entry's connection state moved on
// (epoch mismatch or a possible transition), counting the removal as an
// invalidation. Reports whether an entry was present.
//
//gf:hotpath-safe conntrack invalidation is a rare cold event on the hit path
func (c *Cache) Remove(k flow.Key) bool {
	e, ok := c.entries.Lookup(k)
	if !ok {
		return false
	}
	c.remove(e)
	c.stats.Invalid++
	return true
}

// ExpireIdle removes entries idle for longer than maxIdle. The sweep
// order is flowtable's deterministic slot order.
func (c *Cache) ExpireIdle(now, maxIdle int64) int {
	var stale []*Entry
	for it := c.entries.Iter(); it.Next(); {
		if e := it.Value(); now-e.LastHit > maxIdle {
			stale = append(stale, e)
		}
	}
	for _, e := range stale {
		c.remove(e)
		c.stats.Expired++
	}
	return len(stale)
}

// Invalidate drops every entry; called when pipeline rules change, since
// exact-match entries carry no wildcard against which to revalidate
// incrementally. The table's allocation is retained (the tier is
// capacity-pinned).
func (c *Cache) Invalidate() int {
	n := c.entries.Len()
	c.entries.Reset()
	c.lruHead, c.lruTail = nil, nil
	c.stats.Invalid += uint64(n)
	return n
}

func (c *Cache) remove(e *Entry) {
	c.entries.Delete(e.Key)
	c.unlink(e)
}

func (c *Cache) pushFront(e *Entry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) unlink(e *Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *Entry) {
	if c.lruHead == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
