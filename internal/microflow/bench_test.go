package microflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

func benchCache(n int) (*Cache, []flow.Key, []flow.Key) {
	rng := rand.New(rand.NewSource(1))
	c := New(n)
	hits := make([]flow.Key, n)
	misses := make([]flow.Key, n)
	for i := range hits {
		hits[i] = flow.Key{}.
			With(flow.FieldIPSrc, rng.Uint64()).
			With(flow.FieldIPDst, rng.Uint64()).
			With(flow.FieldTpSrc, uint64(i))
		misses[i] = flow.Key{}.
			With(flow.FieldIPSrc, rng.Uint64()).
			With(flow.FieldIPDst, rng.Uint64()).
			With(flow.FieldTpDst, uint64(i))
		c.Insert(hits[i], hits[i], flow.Verdict{Kind: flow.VerdictOutput, Port: 1}, 0)
	}
	return c, hits, misses
}

// BenchmarkCacheLookupHit is the exact-match first-tier hit path: one
// fused probe on the full-mask flow table plus LRU touch.
func BenchmarkCacheLookupHit(b *testing.B) {
	c, hits, _ := benchCache(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(hits[i%len(hits)], int64(i)); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkCacheLookupMiss is the exact-match miss path — what every
// packet pays before falling through to the main cache.
func BenchmarkCacheLookupMiss(b *testing.B) {
	c, _, misses := benchCache(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(misses[i%len(misses)], int64(i)); ok {
			b.Fatal("unexpected hit")
		}
	}
}
