package microflow

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

// refEntry / refCache are the pre-flowtable microflow cache, kept verbatim
// as the differential-test reference: a Go map keyed by the exact flow.Key
// with the same intrusive LRU list. Lookup results, entry state, eviction
// choices, and every Stats counter must stay bit-identical to Cache's.
type refEntry struct {
	Key     flow.Key
	Final   flow.Key
	Verdict flow.Verdict
	Hits    uint64
	LastHit int64

	prev, next *refEntry
}

type refCache struct {
	capacity int
	entries  map[flow.Key]*refEntry
	lruHead  *refEntry
	lruTail  *refEntry
	stats    Stats
}

func newRef(capacity int) *refCache {
	return &refCache{capacity: capacity, entries: make(map[flow.Key]*refEntry, capacity)}
}

func (c *refCache) Lookup(k flow.Key, now int64) (*refEntry, bool) {
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e.Hits++
	e.LastHit = now
	c.touch(e)
	c.stats.Hits++
	return e, true
}

func (c *refCache) Insert(k, final flow.Key, v flow.Verdict, now int64) *refEntry {
	if old, ok := c.entries[k]; ok {
		old.Final, old.Verdict, old.LastHit = final, v, now
		c.touch(old)
		return old
	}
	if len(c.entries) >= c.capacity {
		if t := c.lruTail; t != nil {
			c.remove(t)
			c.stats.EvictLRU++
		}
	}
	e := &refEntry{Key: k, Final: final, Verdict: v, LastHit: now}
	c.entries[k] = e
	c.pushFront(e)
	c.stats.Inserts++
	return e
}

func (c *refCache) ExpireIdle(now, maxIdle int64) int {
	var stale []*refEntry
	for _, e := range c.entries {
		if now-e.LastHit > maxIdle {
			stale = append(stale, e)
		}
	}
	for _, e := range stale {
		c.remove(e)
		c.stats.Expired++
	}
	return len(stale)
}

func (c *refCache) Invalidate() int {
	n := len(c.entries)
	c.entries = make(map[flow.Key]*refEntry, c.capacity)
	c.lruHead, c.lruTail = nil, nil
	c.stats.Invalid += uint64(n)
	return n
}

func (c *refCache) remove(e *refEntry) {
	delete(c.entries, e.Key)
	c.unlink(e)
}

func (c *refCache) pushFront(e *refEntry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *refCache) unlink(e *refEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *refCache) touch(e *refEntry) {
	if c.lruHead == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// TestDifferentialAgainstMapBackedCache drives the flowtable-backed cache
// and the verbatim old map-backed implementation through the same
// randomized lookup/insert/expire/invalidate sequence with a tight
// capacity (heavy LRU churn) and demands bit-identical observables.
func TestDifferentialAgainstMapBackedCache(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		got := New(64)
		ref := newRef(64)
		key := func() flow.Key {
			// ~3x capacity key space: plenty of misses and evictions.
			return flow.Key{}.With(flow.FieldIPDst, uint64(rng.Intn(192)))
		}
		var now int64
		for step := 0; step < 8000; step++ {
			now++
			switch op := rng.Intn(20); {
			case op < 12: // lookup
				k := key()
				ge, gok := got.Lookup(k, now)
				re, rok := ref.Lookup(k, now)
				if gok != rok {
					t.Fatalf("seed %d step %d: Lookup ok=%v ref=%v", seed, step, gok, rok)
				}
				if gok && (ge.Final != re.Final || ge.Verdict != re.Verdict ||
					ge.Hits != re.Hits || ge.LastHit != re.LastHit) {
					t.Fatalf("seed %d step %d: entry state %+v ref %+v", seed, step, ge, re)
				}
			case op < 18: // insert
				k := key()
				final := k.With(flow.FieldIPDst, uint64(rng.Intn(16)))
				v := flow.Verdict{Kind: flow.VerdictKind(rng.Intn(3)), Port: uint16(rng.Intn(8))}
				got.Insert(k, final, v, now)
				ref.Insert(k, final, v, now)
			case op == 18: // expire a random idle horizon
				maxIdle := int64(rng.Intn(200))
				gn := got.ExpireIdle(now, maxIdle)
				rn := ref.ExpireIdle(now, maxIdle)
				if gn != rn {
					t.Fatalf("seed %d step %d: ExpireIdle=%d ref=%d", seed, step, gn, rn)
				}
			default: // rare full invalidation
				gn := got.Invalidate()
				rn := ref.Invalidate()
				if gn != rn {
					t.Fatalf("seed %d step %d: Invalidate=%d ref=%d", seed, step, gn, rn)
				}
			}
			if got.Len() != len(ref.entries) {
				t.Fatalf("seed %d step %d: Len=%d ref=%d", seed, step, got.Len(), len(ref.entries))
			}
			if got.Stats() != ref.stats {
				t.Fatalf("seed %d step %d: stats %+v ref %+v", seed, step, got.Stats(), ref.stats)
			}
		}
		// Same resident key set, same per-entry state.
		for it := got.entries.Iter(); it.Next(); {
			e := it.Value()
			re, ok := ref.entries[e.Key]
			if !ok {
				t.Fatalf("seed %d: key %s resident only in flowtable cache", seed, e.Key)
			}
			if e.Final != re.Final || e.Verdict != re.Verdict || e.Hits != re.Hits || e.LastHit != re.LastHit {
				t.Fatalf("seed %d: entry %s state %+v ref %+v", seed, e.Key, e, re)
			}
		}
	}
}

// TestBatchLookupDifferential checks that deferred-stats batches observe
// and produce the same state as the reference's immediate updates.
func TestBatchLookupDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	got := New(32)
	ref := newRef(32)
	var now int64
	for round := 0; round < 200; round++ {
		b := got.BatchLookup()
		for i := 0; i < 16; i++ {
			now++
			k := flow.Key{}.With(flow.FieldIPDst, uint64(rng.Intn(96)))
			ge, gok := b.Lookup(k, now)
			re, rok := ref.Lookup(k, now)
			if gok != rok {
				t.Fatalf("round %d: batch Lookup ok=%v ref=%v", round, gok, rok)
			}
			if !gok {
				final := k.With(flow.FieldTpDst, 80)
				v := flow.Verdict{Kind: flow.VerdictOutput, Port: 1}
				got.Insert(k, final, v, now)
				ref.Insert(k, final, v, now)
			} else if ge.Hits != re.Hits {
				t.Fatalf("round %d: hits %d ref %d", round, ge.Hits, re.Hits)
			}
		}
		b.Flush()
		if got.Stats() != ref.stats {
			t.Fatalf("round %d: stats after flush %+v ref %+v", round, got.Stats(), ref.stats)
		}
	}
}
