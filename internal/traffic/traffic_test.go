package traffic

import (
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
)

func sampleByRule(ruleIdx int, rng *rand.Rand) flow.Key {
	return flow.Key{}.
		With(flow.FieldIPDst, uint64(ruleIdx)<<16|uint64(rng.Intn(1<<16))).
		With(flow.FieldTpDst, uint64(ruleIdx%100))
}

func TestGenerateFlowsCountAndUniqueness(t *testing.T) {
	cfg := Config{Seed: 1, NumFlows: 5000}
	flows := GenerateFlows(cfg, UniformPicker(50), sampleByRule)
	if len(flows) != 5000 {
		t.Fatalf("got %d flows", len(flows))
	}
	seen := map[flow.Key]bool{}
	for _, f := range flows {
		if seen[f.Key] {
			t.Fatal("duplicate flow key")
		}
		seen[f.Key] = true
		if f.Packets < 1 {
			t.Fatal("flow with no packets")
		}
		if f.Start < 0 || f.Start >= 60_000_000_000 {
			t.Fatalf("start %d outside default spread", f.Start)
		}
	}
}

func TestGenerateFlowsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, NumFlows: 1000}
	a := GenerateFlows(cfg, UniformPicker(20), sampleByRule)
	b := GenerateFlows(cfg, UniformPicker(20), sampleByRule)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestPickerRespectsWeights(t *testing.T) {
	p := NewPicker([]float64{1, 0, 9})
	rng := rand.New(rand.NewSource(3))
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[p.Pick(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 7 || ratio > 12 {
		t.Errorf("9:1 weights produced ratio %.2f", ratio)
	}
}

func TestPickerPanicsOnNoWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPicker([]float64{0, -1})
}

func TestParetoHeavyTail(t *testing.T) {
	cfg := Config{Seed: 7, NumFlows: 20000}
	flows := GenerateFlows(cfg, UniformPicker(1000), sampleByRule)
	ones, big := 0, 0
	total := 0
	for _, f := range flows {
		total += f.Packets
		if f.Packets == 1 {
			ones++
		}
		if f.Packets >= 100 {
			big++
		}
	}
	// Pareto(1.3): ~50%+ singletons, a small but non-empty elephant tail.
	if float64(ones)/float64(len(flows)) < 0.3 {
		t.Errorf("only %d/%d single-packet flows", ones, len(flows))
	}
	if big == 0 {
		t.Error("no elephant flows at all")
	}
	mean := float64(total) / float64(len(flows))
	if mean < 1.5 || mean > 20 {
		t.Errorf("mean packets per flow = %.2f, implausible", mean)
	}
}

func TestExpandSortedAndComplete(t *testing.T) {
	cfg := Config{Seed: 9, NumFlows: 500}
	flows := GenerateFlows(cfg, UniformPicker(50), sampleByRule)
	pkts := Expand(cfg, flows)
	want := 0
	for _, f := range flows {
		want += f.Packets
	}
	if len(pkts) != want {
		t.Fatalf("expanded %d packets, want %d", len(pkts), want)
	}
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Time < pkts[i-1].Time {
			t.Fatal("trace not time-sorted")
		}
	}
	for _, p := range pkts {
		if p.Size < 64 || p.Size > 1500 {
			t.Fatalf("packet size %d", p.Size)
		}
	}
	// Per-flow packet times must be strictly increasing.
	last := map[int]int64{}
	for _, p := range pkts {
		if prev, ok := last[p.FlowID]; ok && p.Time <= prev {
			t.Fatal("intra-flow times not increasing")
		}
		last[p.FlowID] = p.Time
	}
}

func TestShiftStarts(t *testing.T) {
	cfg := Config{Seed: 1, NumFlows: 100}
	flows := GenerateFlows(cfg, UniformPicker(10), sampleByRule)
	shifted := ShiftStarts(flows, 1000)
	for i := range flows {
		if shifted[i].Start != flows[i].Start+1000 {
			t.Fatal("shift wrong")
		}
	}
	// Original untouched.
	if flows[0].Start == shifted[0].Start {
		t.Fatal("ShiftStarts mutated input")
	}
}

func TestMergeTraces(t *testing.T) {
	cfg := Config{Seed: 2, NumFlows: 200}
	f1 := GenerateFlows(cfg, UniformPicker(10), sampleByRule)
	cfg2 := Config{Seed: 3, NumFlows: 300}
	f2 := GenerateFlows(cfg2, UniformPicker(10), sampleByRule)
	t1, t2 := Expand(cfg, f1), Expand(cfg2, f2)
	merged := Merge(t1, t2)
	if len(merged) != len(t1)+len(t2) {
		t.Fatalf("merged %d, want %d", len(merged), len(t1)+len(t2))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatal("merged trace not sorted")
		}
	}
	// Flow IDs from different traces must not collide.
	ids := map[int]flow.Key{}
	for _, p := range merged {
		if k, ok := ids[p.FlowID]; ok && k != p.Key {
			t.Fatal("flow ID collision across traces")
		}
		ids[p.FlowID] = p.Key
	}
}

func TestLocalityString(t *testing.T) {
	if HighLocality.String() != "high" || LowLocality.String() != "low" {
		t.Error("locality names")
	}
}
