// Package traffic synthesises packet traces with the statistical character
// the paper takes from CAIDA captures: heavy-tailed (Pareto) flow sizes,
// exponential inter-packet gaps, and flow arrivals spread over a
// configurable window. Which flows appear — and how often the same rules
// recur — is controlled by a weighted Picker, giving the high- and
// low-locality patterns of §6.1.
package traffic

import (
	"math"
	"math/rand"
	"sort"

	"gigaflow/internal/flow"
)

// Packet is one trace event.
type Packet struct {
	Key    flow.Key
	Time   int64 // virtual nanoseconds since trace start
	Size   int   // bytes
	FlowID int
}

// Flow is one generated flow before packet expansion.
type Flow struct {
	ID      int
	Key     flow.Key
	RuleIdx int   // index of the ruleset rule this flow targets
	Packets int   // number of packets
	Start   int64 // first-packet time, ns
	GapMean int64 // mean inter-packet gap, ns
}

// Locality selects the rule-recurrence pattern of §6.1.
type Locality uint8

const (
	// LowLocality draws rules uniformly: few shared sub-traversals.
	LowLocality Locality = iota
	// HighLocality draws rules proportionally to their header-tuple
	// sharing frequency (Fig. 4), concentrating traffic on reusable
	// sub-traversals.
	HighLocality
)

// String names the locality mode as used in the paper's figures.
func (l Locality) String() string {
	if l == HighLocality {
		return "high"
	}
	return "low"
}

// Config parameterises trace generation.
type Config struct {
	Seed     int64
	NumFlows int
	// SpreadNs is the window over which flow start times are spread
	// (default 60 s).
	SpreadNs int64
	// GapMeanNs is the mean intra-flow inter-packet gap (default 1 ms).
	GapMeanNs int64
	// ParetoAlpha shapes the flow-size tail (default 1.3; smaller = heavier).
	ParetoAlpha float64
	// MaxPackets caps a single flow's packet count (default 10000).
	MaxPackets int
}

func (c Config) withDefaults() Config {
	if c.SpreadNs == 0 {
		c.SpreadNs = 60_000_000_000
	}
	if c.GapMeanNs == 0 {
		c.GapMeanNs = 1_000_000
	}
	if c.ParetoAlpha == 0 {
		c.ParetoAlpha = 1.3
	}
	if c.MaxPackets == 0 {
		c.MaxPackets = 10000
	}
	return c
}

// Picker selects indices with probability proportional to their weights
// (cumulative-sum + binary search).
type Picker struct {
	cum []float64
}

// NewPicker builds a weighted picker; non-positive weights count as zero.
// Panics if no weight is positive.
func NewPicker(weights []float64) *Picker {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		panic("traffic: no positive weights")
	}
	return &Picker{cum: cum}
}

// UniformPicker builds a picker with equal weights over n indices.
func UniformPicker(n int) *Picker {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return NewPicker(w)
}

// Pick draws one index.
func (p *Picker) Pick(rng *rand.Rand) int {
	x := rng.Float64() * p.cum[len(p.cum)-1]
	return sort.SearchFloat64s(p.cum, x)
}

// GenerateFlows creates up to cfg.NumFlows flows. Each flow's target rule
// index is drawn from picker, and sample(ruleIdx, rng) synthesises a
// concrete flow key for it. Distinct flows carry distinct keys (duplicates
// are re-sampled). When the rule population cannot yield enough distinct
// keys, generation stops early and returns what exists rather than
// spinning — callers must tolerate len(result) < cfg.NumFlows.
func GenerateFlows(cfg Config, picker *Picker, sample func(ruleIdx int, rng *rand.Rand) flow.Key) []Flow {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]Flow, 0, cfg.NumFlows)
	seen := make(map[flow.Key]bool, cfg.NumFlows)
	failedPicks := 0
	maxFailedPicks := 4*cfg.NumFlows + 1000
	for len(flows) < cfg.NumFlows && failedPicks < maxFailedPicks {
		ri := picker.Pick(rng)
		var k flow.Key
		ok := false
		for attempt := 0; attempt < 30; attempt++ {
			k = sample(ri, rng)
			if !seen[k] {
				ok = true
				break
			}
		}
		if !ok {
			// This rule's key space looks exhausted; try another.
			failedPicks++
			continue
		}
		seen[k] = true
		f := Flow{
			ID:      len(flows),
			Key:     k,
			RuleIdx: ri,
			Packets: paretoCount(rng, cfg.ParetoAlpha, cfg.MaxPackets),
			Start:   rng.Int63n(cfg.SpreadNs),
			GapMean: cfg.GapMeanNs,
		}
		flows = append(flows, f)
	}
	return flows
}

// paretoCount draws a flow size from a Pareto(α, x_m=1) distribution,
// CAIDA's heavy-tailed flow-size character: most flows are mice, a few are
// elephants.
func paretoCount(rng *rand.Rand, alpha float64, maxPackets int) int {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	n := int(math.Pow(u, -1/alpha))
	if n < 1 {
		n = 1
	}
	if n > maxPackets {
		n = maxPackets
	}
	return n
}

// Expand turns flows into a time-sorted packet trace with exponential
// inter-packet gaps.
func Expand(cfg Config, flows []Flow) []Packet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	total := 0
	for _, f := range flows {
		total += f.Packets
	}
	pkts := make([]Packet, 0, total)
	for _, f := range flows {
		t := f.Start
		for i := 0; i < f.Packets; i++ {
			size := 64 + rng.Intn(1437) // 64..1500 bytes
			pkts = append(pkts, Packet{Key: f.Key, Time: t, Size: size, FlowID: f.ID})
			gap := rng.ExpFloat64() * float64(f.GapMean)
			t += int64(gap) + 1
		}
	}
	sort.Slice(pkts, func(i, j int) bool {
		if pkts[i].Time != pkts[j].Time {
			return pkts[i].Time < pkts[j].Time
		}
		return pkts[i].FlowID < pkts[j].FlowID
	})
	return pkts
}

// ShiftStarts returns a copy of flows with all start times offset by
// deltaNs — used to model a second workload arriving mid-run (Fig. 18).
func ShiftStarts(flows []Flow, deltaNs int64) []Flow {
	out := make([]Flow, len(flows))
	copy(out, flows)
	for i := range out {
		out[i].Start += deltaNs
	}
	return out
}

// Merge combines multiple traces into one time-sorted trace, renumbering
// flow IDs to stay unique.
func Merge(traces ...[]Packet) []Packet {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Packet, 0, total)
	idBase := 0
	for _, tr := range traces {
		maxID := -1
		for _, p := range tr {
			p.FlowID += idBase
			out = append(out, p)
			if p.FlowID-idBase > maxID {
				maxID = p.FlowID - idBase
			}
		}
		idBase += maxID + 1
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].FlowID < out[j].FlowID
	})
	return out
}
