package packet

import (
	"bytes"
	"testing"

	"gigaflow/internal/flow"
)

// FuzzDecode drives the decoder with arbitrary bytes and checks its two
// contracts: it never panics (the fuzz engine catches that for free),
// and on cleanly decoded frames, decode → encode → decode is a fixed
// point — re-encoding the extracted key and decoding the result yields
// the identical key. The seed corpus under testdata/fuzz/FuzzDecode
// pins valid TCP/UDP/ICMP/VLAN frames plus truncated and garbage
// inputs, and `make ci` replays it in regression mode.
func FuzzDecode(f *testing.F) {
	tcp := Encode(tcpKey())
	f.Add(tcp)
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, IPProtoUDP)))
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, IPProtoICMP).
		With(flow.FieldTpSrc, 8).With(flow.FieldTpDst, 0)))
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, 47)))
	f.Add(Encode(tcpKey().With(flow.FieldEthType, 0x0806)))
	f.Add(vlanTag(tcp, EtherTypeVLAN, 42))
	f.Add(vlanTag(vlanTag(tcp, EtherTypeVLAN, 100), EtherTypeQinQ, 7))
	f.Add([]byte{})
	f.Add(tcp[:10])
	f.Add(tcp[:14])
	f.Add(tcp[:33])
	f.Add(tcp[:36])
	f.Add(vlanTag(tcp, EtherTypeVLAN, 5)[:16])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, frame []byte) {
		const inPort = 9
		k1, info1 := Decode(frame, inPort)

		// Structural invariants that hold for every input.
		if k1.Get(flow.FieldInPort) != inPort {
			t.Fatalf("in_port = %d, want %d", k1.Get(flow.FieldInPort), inPort)
		}
		if k1.Get(flow.FieldMeta) != 0 {
			t.Fatal("metadata must be zero at ingress")
		}
		if int(info1.Proto) >= NumProtos || int(info1.Err) >= NumErrCodes {
			t.Fatalf("out-of-range info %+v", info1)
		}
		if info1.HeaderLen > len(frame) {
			t.Fatalf("HeaderLen %d exceeds frame length %d", info1.HeaderLen, len(frame))
		}
		if info1.Err == ErrShortFrame {
			if k1.Get(flow.FieldEthSrc) != 0 || k1.Get(flow.FieldEthType) != 0 {
				t.Fatalf("short frame decoded L2 fields: %s", k1)
			}
			return
		}

		// Fixed point: a cleanly decoded key survives the encoder.
		// (Defective frames degrade and need not round-trip.)
		if !info1.OK() {
			return
		}
		reenc := Encode(k1)
		k2, info2 := Decode(reenc, inPort)
		if !info2.OK() {
			t.Fatalf("re-encoded frame failed to decode: %+v\nkey %s\nframe % x",
				info2, k1, reenc)
		}
		if k2 != k1 {
			t.Fatalf("decode→encode→decode not a fixed point:\nk1 %s\nk2 %s\nframe % x",
				k1, k2, reenc)
		}
		if info2.Proto != info1.Proto {
			t.Fatalf("proto changed across round trip: %v -> %v", info1.Proto, info2.Proto)
		}
	})
}

// FuzzDecodeDNS drives the DNS question parser with arbitrary payloads.
// Its contracts: never panic (hostile names, compression-pointer loops,
// pointers past the message), and anything reported ok satisfies the
// documented bounds — a name within 255 octets, labels within 63, and a
// question section the message actually contains. The seed corpus under
// testdata/fuzz/FuzzDecodeDNS pins a valid query, a pointer-compressed
// response, and the hostile shapes; `make ci` replays it in regression
// mode.
func FuzzDecodeDNS(f *testing.F) {
	f.Add(AppendDNSQuery(nil, 1, "www.example.com"))
	f.Add(AppendDNSQuery(nil, 0xffff, "a"))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xc0, 12})
	f.Add([]byte{0xbe, 0xef, 0x81, 0x80, 0, 1, 0, 0, 0, 0, 0, 0,
		3, 'w', 'w', 'w', 0xc0, 22, 0, 1, 0, 1,
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		q, ok := DecodeDNS(payload)
		if !ok {
			return
		}
		if q.nameLen > dnsMaxName {
			t.Fatalf("name length %d exceeds cap", q.nameLen)
		}
		if q.QDCount == 0 {
			t.Fatal("ok with no question section")
		}
		// Every label in the decoded presentation form obeys the label cap.
		for _, label := range bytes.Split(q.NameBytes(), []byte{'.'}) {
			if len(label) > dnsMaxLabel {
				t.Fatalf("label %q exceeds 63 octets", label)
			}
		}
		// Round-trip: re-encoding the decoded question yields a message
		// that decodes to the same name and type (for plain A/IN queries).
		if !q.Response && q.QType == DNSTypeA && q.QClass == DNSClassIN && q.nameLen > 0 {
			re := AppendDNSQuery(nil, q.ID, q.Name())
			q2, ok2 := DecodeDNS(re)
			if !ok2 || q2.Name() != q.Name() {
				t.Fatalf("re-encode of %q failed (%v, %q)", q.Name(), ok2, q2.Name())
			}
		}
	})
}
