package packet

import (
	"bytes"
	"strings"
	"testing"

	"gigaflow/internal/flow"
)

func TestDNSRoundTrip(t *testing.T) {
	for _, name := range []string{
		"www.example.com",
		"a",
		"pool.gigaflow.test",
		strings.Repeat("x", 63), // max label
		strings.Repeat("y", 63) + "." + strings.Repeat("z", 63), // two max labels
		"trailing.dot.", // empty labels skipped
		"..double",
	} {
		payload := AppendDNSQuery(nil, 0x1234, name)
		q, ok := DecodeDNS(payload)
		if !ok {
			t.Fatalf("%q: decode failed", name)
		}
		want := strings.Trim(strings.ReplaceAll(name, "..", "."), ".")
		if q.Name() != want {
			t.Errorf("%q: name = %q, want %q", name, q.Name(), want)
		}
		if q.ID != 0x1234 || q.Response || q.Opcode != 0 ||
			q.QType != DNSTypeA || q.QClass != DNSClassIN {
			t.Errorf("%q: decoded %+v", name, q)
		}
		if !bytes.Equal(q.NameBytes(), []byte(want)) {
			t.Errorf("%q: NameBytes diverges from Name", name)
		}
	}
}

func TestDNSCompressionPointer(t *testing.T) {
	// Hand-built response whose question name is pointer-compressed:
	// "www" + a pointer to "example.com" stored after the fixed fields.
	// (Real resolvers compress answer names, not the first question —
	// but hostile input can, and the parser must chase it correctly.)
	msg := []byte{
		0xbe, 0xef, 0x81, 0x80, 0, 1, 0, 0, 0, 0, 0, 0, // header, QR set
		// offset 12: question name "www" + pointer to offset 22
		3, 'w', 'w', 'w', 0xc0, 22,
		// offset 18: the fixed fields (follow the first pointer)
		0, 1, 0, 1,
		// offset 22: "example" "com" 0 (the pointer target)
		7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0,
	}
	q, ok := DecodeDNS(msg)
	if !ok {
		t.Fatal("pointer-compressed question must decode")
	}
	if q.Name() != "www.example.com" {
		t.Fatalf("name = %q", q.Name())
	}
	if !q.Response || q.QType != DNSTypeA {
		t.Fatalf("decoded %+v", q)
	}
}

func TestDNSHostileInputs(t *testing.T) {
	valid := AppendDNSQuery(nil, 1, "a.b")
	cases := map[string][]byte{
		"empty":                {},
		"short header":         valid[:11],
		"no question":          append(append([]byte{}, valid[:4]...), 0, 0, 0, 0, 0, 0, 0, 0),
		"truncated name":       valid[:14],
		"missing fixed fields": valid[:len(valid)-2],
		"pointer loop": {
			0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
			0xc0, 12, // points at itself
		},
		"pointer past message": {
			0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
			0xc0, 200,
		},
		"reserved label type": {
			0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
			0x80, 0,
		},
		"label past end": {
			0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
			40, 'a', 'b',
		},
	}
	// A name that sums past the 255-octet cap out of legal labels.
	long := []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	for i := 0; i < 6; i++ {
		long = append(long, 63)
		long = append(long, bytes.Repeat([]byte{'q'}, 63)...)
	}
	long = append(long, 0, 0, 1, 0, 1)
	cases["name past 255"] = long

	for name, msg := range cases {
		if _, ok := DecodeDNS(msg); ok {
			t.Errorf("%s: hostile input decoded ok", name)
		}
	}
}

func TestDecodeDNSNoAlloc(t *testing.T) {
	payload := AppendDNSQuery(nil, 7, "ns1.pool.gigaflow.test")
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := DecodeDNS(payload); !ok {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeDNS allocates %.1f/op, want 0", allocs)
	}
}

func TestUDPPayloadExtraction(t *testing.T) {
	k := tcpKey().With(flow.FieldIPProto, IPProtoUDP).
		With(flow.FieldTpSrc, 4000).With(flow.FieldTpDst, 53)
	dns := AppendDNSQuery(nil, 42, "svc.gigaflow.test")
	frame := EncodePayload(k, dns)

	dk, info := Decode(frame, 3)
	if !info.OK() || info.Proto != ProtoUDP {
		t.Fatalf("decode info %+v", info)
	}
	if dk.Get(flow.FieldTpDst) != 53 {
		t.Fatalf("decoded key %s", dk)
	}
	pl, ok := UDPPayload(frame, info)
	if !ok || !bytes.Equal(pl, dns) {
		t.Fatalf("payload round-trip failed (ok=%v, %d vs %d bytes)", ok, len(pl), len(dns))
	}
	q, ok := DecodeDNS(pl)
	if !ok || q.Name() != "svc.gigaflow.test" {
		t.Fatalf("DNS through the frame: %v %q", ok, q.Name())
	}

	// The UDP length and IP total length fields must account for the
	// payload: reported lengths match the frame layout exactly.
	ipTotal := int(be16(frame[ethHeaderLen+2:]))
	if ipTotal != len(frame)-ethHeaderLen {
		t.Errorf("IP total length %d, frame carries %d", ipTotal, len(frame)-ethHeaderLen)
	}
	udpLen := int(be16(frame[ethHeaderLen+ipv4MinHeader+4:]))
	if udpLen != udpHeaderLen+len(dns) {
		t.Errorf("UDP length %d, want %d", udpLen, udpHeaderLen+len(dns))
	}

	// Non-UDP frames refuse.
	tcpFrame := Encode(tcpKey())
	_, tcpInfo := Decode(tcpFrame, 0)
	if _, ok := UDPPayload(tcpFrame, tcpInfo); ok {
		t.Error("UDPPayload accepted a TCP frame")
	}
}
