package packet

import (
	"testing"

	"gigaflow/internal/flow"
)

// verifyIPChecksum recomputes the IPv4 header checksum over the patched
// frame; a correct incremental update leaves it verifying to zero... or
// rather, recomputation with the stored checksum zeroed must reproduce
// the stored value.
func verifyIPChecksum(t *testing.T, frame []byte) {
	t.Helper()
	ip := locateIPv4(frame)
	if ip < 0 {
		t.Fatal("frame not IPv4")
	}
	ihl := int(frame[ip]&0x0f) * 4
	hdr := append([]byte(nil), frame[ip:ip+ihl]...)
	stored := be16(hdr[10:])
	hdr[10], hdr[11] = 0, 0
	if got := checksum16(hdr); got != stored {
		t.Fatalf("IP checksum %#04x, recomputed %#04x", stored, got)
	}
}

// l4Checksum computes the full TCP/UDP checksum (pseudo-header + segment)
// with the checksum field zeroed.
func l4Checksum(frame []byte) uint16 {
	ip := locateIPv4(frame)
	ihl := int(frame[ip]&0x0f) * 4
	l4 := frame[ip+ihl:]
	seg := append([]byte(nil), l4...)
	off := 16 // TCP checksum offset
	if frame[ip+9] == IPProtoUDP {
		off = 6
	}
	seg[off], seg[off+1] = 0, 0

	var pseudo []byte
	pseudo = append(pseudo, frame[ip+12:ip+20]...) // src, dst
	pseudo = append(pseudo, 0, frame[ip+9], byte(len(seg)>>8), byte(len(seg)))
	var sum uint32
	for _, b := range [][]byte{pseudo, seg} {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func natKey(proto uint64) flow.Key {
	return tcpKey().With(flow.FieldIPProto, proto).
		With(flow.FieldTpSrc, 4000).With(flow.FieldTpDst, 53)
}

func TestPatchTupleTCP(t *testing.T) {
	frame := Encode(natKey(IPProtoTCP))
	// Give the TCP checksum a real value first so the incremental update
	// is observable.
	full := l4Checksum(frame)
	ip := locateIPv4(frame)
	put16(frame[ip+20+16:], full)

	if !PatchTuple(frame, 0x0a140001, 0x0a000002, 5301, 4000) {
		t.Fatal("patch refused")
	}
	k, info := Decode(frame, 0)
	if !info.OK() {
		t.Fatalf("patched frame decodes with %v", info.Err)
	}
	if k.Get(flow.FieldIPSrc) != 0x0a140001 || k.Get(flow.FieldIPDst) != 0x0a000002 ||
		k.Get(flow.FieldTpSrc) != 5301 || k.Get(flow.FieldTpDst) != 4000 {
		t.Fatalf("patched tuple = %s", k)
	}
	verifyIPChecksum(t, frame)
	if got, want := be16(frame[ip+20+16:]), l4Checksum(frame); got != want {
		t.Fatalf("TCP checksum %#04x after patch, full recompute %#04x", got, want)
	}
}

func TestPatchTupleUDP(t *testing.T) {
	dns := AppendDNSQuery(nil, 9, "vip.gigaflow.test")
	frame := EncodePayload(natKey(IPProtoUDP), dns)
	ip := locateIPv4(frame)
	udpCk := ip + 20 + 6

	t.Run("zero checksum stays zero", func(t *testing.T) {
		f := append([]byte(nil), frame...)
		if !PatchTuple(f, 0x0a140001, 0x0a000002, 5301, 4000) {
			t.Fatal("patch refused")
		}
		verifyIPChecksum(t, f)
		if be16(f[udpCk:]) != 0 {
			t.Fatal("zero (offloaded) UDP checksum must stay zero")
		}
		// The DNS payload rides through untouched.
		_, info := Decode(f, 0)
		pl, ok := UDPPayload(f, info)
		if !ok {
			t.Fatal("payload lost")
		}
		if q, ok := DecodeDNS(pl); !ok || q.Name() != "vip.gigaflow.test" {
			t.Fatal("payload corrupted by patch")
		}
	})

	t.Run("computed checksum updated incrementally", func(t *testing.T) {
		f := append([]byte(nil), frame...)
		put16(f[udpCk:], l4Checksum(f))
		if !PatchTuple(f, 0x0a140001, 0x0a000002, 5301, 4000) {
			t.Fatal("patch refused")
		}
		verifyIPChecksum(t, f)
		if got, want := be16(f[udpCk:]), l4Checksum(f); got != want {
			t.Fatalf("UDP checksum %#04x after patch, full recompute %#04x", got, want)
		}
	})
}

func TestPatchTupleVLAN(t *testing.T) {
	frame := vlanTag(Encode(natKey(IPProtoTCP)), EtherTypeVLAN, 42)
	if !PatchTuple(frame, 1, 2, 3, 4) {
		t.Fatal("VLAN-tagged IPv4 must be patchable")
	}
	k, info := Decode(frame, 0)
	if !info.OK() || k.Get(flow.FieldIPSrc) != 1 || k.Get(flow.FieldTpDst) != 4 {
		t.Fatalf("patched VLAN frame: %s (%v)", k, info.Err)
	}
	verifyIPChecksum(t, frame)
}

func TestPatchTupleRefusals(t *testing.T) {
	arp := Encode(tcpKey().With(flow.FieldEthType, 0x0806))
	if PatchTuple(arp, 1, 2, 3, 4) {
		t.Error("patched a non-IP frame")
	}
	short := Encode(natKey(IPProtoTCP))[:20]
	if PatchTuple(short, 1, 2, 3, 4) {
		t.Error("patched a truncated IP header")
	}

	// ICMP: addresses rewritten, type/code (in the port fields) untouched.
	icmp := Encode(tcpKey().With(flow.FieldIPProto, IPProtoICMP).
		With(flow.FieldTpSrc, 8).With(flow.FieldTpDst, 0))
	if !PatchTuple(icmp, 9, 10, 99, 99) {
		t.Fatal("ICMP addresses must be patchable")
	}
	k, _ := Decode(icmp, 0)
	if k.Get(flow.FieldIPSrc) != 9 || k.Get(flow.FieldTpSrc) != 8 {
		t.Fatalf("icmp patch: %s", k)
	}
	verifyIPChecksum(t, icmp)
}

func TestPatchFrameNAT(t *testing.T) {
	frame := Encode(natKey(IPProtoUDP))
	want := natKey(IPProtoUDP).
		With(flow.FieldIPSrc, 0x0a090001).With(flow.FieldTpSrc, 53)
	if !PatchFrameNAT(frame, want) {
		t.Fatal("patch refused")
	}
	k, _ := Decode(frame, 0)
	for _, f := range []flow.FieldID{flow.FieldIPSrc, flow.FieldIPDst,
		flow.FieldTpSrc, flow.FieldTpDst} {
		if k.Get(f) != want.Get(f) {
			t.Errorf("%s = %d, want %d", f, k.Get(f), want.Get(f))
		}
	}
}
