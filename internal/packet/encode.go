package packet

import "gigaflow/internal/flow"

// FrameLen reports the number of bytes AppendFrame will emit for k: an
// Ethernet header, plus an IPv4 header and transport header when the
// key's ethertype and protocol call for them.
func FrameLen(k flow.Key) int {
	if k.Get(flow.FieldEthType) != EtherTypeIPv4 {
		return ethHeaderLen
	}
	n := ethHeaderLen + ipv4MinHeader
	switch k.Get(flow.FieldIPProto) {
	case IPProtoTCP:
		n += tcpMinHeader
	case IPProtoUDP:
		n += udpHeaderLen
	case IPProtoICMP:
		n += icmpHeaderLen
	}
	return n
}

// AppendFrame serializes k into a minimal valid wire frame appended to
// buf. The frame is the canonical form Decode maps back onto the same
// key: no VLAN tags, no IP options, first-fragment offsets, and — for
// keys whose ethertype is not IPv4 — an Ethernet header alone. The
// ingress port and metadata register are not wire fields and are not
// encoded. The IPv4 (and ICMP) checksums are computed so the frames
// stand up to capture tooling; the TCP/UDP checksum is left zero, the
// checksum-offload convention real captures exhibit.
func AppendFrame(buf []byte, k flow.Key) []byte {
	return AppendFramePayload(buf, k, nil)
}

// AppendFramePayload is AppendFrame with transport payload bytes carried
// after the L4 header; the IPv4 total length and the UDP length field
// account for it. A DNS message as the payload of a UDP key yields the
// frames the dnslb scenario feeds the datapath.
func AppendFramePayload(buf []byte, k flow.Key, payload []byte) []byte {
	buf = appendBE48(buf, k.Get(flow.FieldEthDst))
	buf = appendBE48(buf, k.Get(flow.FieldEthSrc))
	ethType := k.Get(flow.FieldEthType)
	buf = appendBE16(buf, uint16(ethType))
	if ethType != EtherTypeIPv4 {
		return buf
	}

	proto := byte(k.Get(flow.FieldIPProto))
	l4len := 0
	switch proto {
	case IPProtoTCP:
		l4len = tcpMinHeader
	case IPProtoUDP:
		l4len = udpHeaderLen
	case IPProtoICMP:
		l4len = icmpHeaderLen
	}

	ipStart := len(buf)
	buf = append(buf, 0x45, 0) // version 4, IHL 5, TOS 0
	buf = appendBE16(buf, uint16(ipv4MinHeader+l4len+len(payload)))
	buf = append(buf, 0, 0, 0x40, 0) // ID 0, DF, fragment offset 0
	buf = append(buf, 64, proto, 0, 0)
	buf = appendBE32(buf, uint32(k.Get(flow.FieldIPSrc)))
	buf = appendBE32(buf, uint32(k.Get(flow.FieldIPDst)))
	csum := checksum16(buf[ipStart:])
	buf[ipStart+10] = byte(csum >> 8)
	buf[ipStart+11] = byte(csum)

	tpSrc := uint16(k.Get(flow.FieldTpSrc))
	tpDst := uint16(k.Get(flow.FieldTpDst))
	switch proto {
	case IPProtoTCP:
		buf = appendBE16(buf, tpSrc)
		buf = appendBE16(buf, tpDst)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // seq, ack
		buf = append(buf, 0x50, 0x10)             // data offset 5, ACK
		buf = append(buf, 0xff, 0xff, 0, 0, 0, 0) // window, cksum 0, urg 0
	case IPProtoUDP:
		buf = appendBE16(buf, tpSrc)
		buf = appendBE16(buf, tpDst)
		buf = appendBE16(buf, uint16(udpHeaderLen+len(payload)))
		buf = append(buf, 0, 0) // checksum 0: legal for IPv4
	case IPProtoICMP:
		icmpStart := len(buf)
		buf = append(buf, byte(tpSrc), byte(tpDst), 0, 0, 0, 0, 0, 0)
		csum := checksum16(buf[icmpStart:])
		buf[icmpStart+2] = byte(csum >> 8)
		buf[icmpStart+3] = byte(csum)
	}
	return append(buf, payload...)
}

// Encode is AppendFrame into a fresh, exactly-sized buffer.
func Encode(k flow.Key) []byte {
	return AppendFrame(make([]byte, 0, FrameLen(k)), k)
}

// EncodePayload is AppendFramePayload into a fresh, exactly-sized buffer.
func EncodePayload(k flow.Key, payload []byte) []byte {
	return AppendFramePayload(make([]byte, 0, FrameLen(k)+len(payload)), k, payload)
}

// checksum16 computes the RFC 1071 ones'-complement checksum over b,
// which must already have its checksum field zeroed.
func checksum16(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func appendBE16(buf []byte, v uint16) []byte {
	return append(buf, byte(v>>8), byte(v))
}

func appendBE32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendBE48(buf []byte, v uint64) []byte {
	return append(buf, byte(v>>40), byte(v>>32), byte(v>>24),
		byte(v>>16), byte(v>>8), byte(v))
}
