package packet

import "gigaflow/internal/flow"

// RSS-style 5-tuple extraction: the ingestion front-end needs only a
// shard assignment, not a full key, so it reads the handful of L3/L4
// header words a NIC's RSS engine would and defers the complete Decode
// to the owning shard worker. Extraction succeeds exactly when Decode
// would yield a clean IPv4 L3/L4 key (Info.Err == ErrOK and a non-L2
// protocol class): anything else — short frames, truncated or
// inconsistent headers, over-deep VLAN stacks, non-IPv4 ethertypes —
// reports !ok and the caller falls back to submitter-side Decode plus
// key-hash routing, preserving the degraded-frame semantics bit for
// bit. FuzzRSSHash holds the two code paths to that equivalence.

// Tuple is the symmetric-hash input extracted from wire bytes: the five
// values Decode would place in the corresponding key fields. For ICMP
// the type/code ride in the port slots (OVS-style, exactly as Decode
// does); for non-first fragments and port-less transports the ports are
// zero, again mirroring Decode.
type Tuple struct {
	SrcIP   uint64
	DstIP   uint64
	Proto   uint64
	SrcPort uint64
	DstPort uint64
}

// SymHash is the tuple's endpoint-symmetric shard hash, bit-identical
// to flow.Key.SymHash on the key Decode builds from the same frame —
// both feed flow.SymHash5 — so wire-hash routing and key-hash routing
// agree on every frame the extractor accepts.
//
//gf:hotpath
func (t Tuple) SymHash() uint64 {
	return flow.SymHash5(t.SrcIP, t.DstIP, t.Proto, t.SrcPort, t.DstPort)
}

// RSSTuple extracts the 5-tuple from a raw Ethernet frame, reading only
// the header words the hash needs. ok reports whether the frame parses
// as clean IPv4 — the exact set of frames Decode returns with
// Info.Err == ErrOK and an IPv4 protocol class. It never allocates and
// never panics.
//
// The validation mirrors Decode step for step (same VLAN-stack budget,
// same IHL and truncation checks, same fragment rule) because the two
// must agree on which frames are cleanly decodable: a frame RSSTuple
// accepts is decoded on the shard worker it hashes to, and a frame it
// rejects is decoded by the submitter.
//
//gf:hotpath
func RSSTuple(frame []byte) (Tuple, bool) {
	var t Tuple
	if len(frame) < ethHeaderLen {
		return t, false
	}
	ethType := be16(frame[12:])
	off := ethHeaderLen
	for tags := 0; tags < maxVLANTags && (ethType == EtherTypeVLAN || ethType == EtherTypeQinQ); tags++ {
		if len(frame) < off+vlanTagLen {
			return t, false
		}
		ethType = be16(frame[off+2:])
		off += vlanTagLen
	}
	// A residual VLAN TPID here means the stack exceeded the budget
	// (Decode's ErrVLANTooDeep); it fails the != IPv4 test below.
	if ethType != EtherTypeIPv4 {
		return t, false
	}
	if len(frame) < off+ipv4MinHeader {
		return t, false
	}
	verIHL := frame[off]
	if verIHL>>4 != 4 {
		return t, false
	}
	ihl := int(verIHL&0x0f) * 4
	if ihl < ipv4MinHeader || len(frame) < off+ihl {
		return t, false
	}
	proto := frame[off+9]
	t.SrcIP = be32(frame[off+12:])
	t.DstIP = be32(frame[off+16:])
	t.Proto = uint64(proto)
	frag := be16(frame[off+6:])&0x1fff != 0
	off += ihl
	switch proto {
	case IPProtoTCP, IPProtoUDP:
		if frag {
			// Non-first fragment: the transport header lives in the first
			// fragment; ports stay zero and the frame is still clean.
			return t, true
		}
		if len(frame) < off+4 {
			return t, false // Decode's ErrL4Truncated
		}
		t.SrcPort = uint64(be16(frame[off:]))
		t.DstPort = uint64(be16(frame[off+2:]))
	case IPProtoICMP:
		if frag {
			return t, true
		}
		if len(frame) < off+2 {
			return t, false
		}
		t.SrcPort = uint64(frame[off])
		t.DstPort = uint64(frame[off+1])
	}
	// Other transports have no port concept; the tuple is complete.
	return t, true
}

// RSSHash is the one-call form of RSSTuple + Tuple.SymHash: the
// symmetric shard hash of a frame's 5-tuple, read straight from the
// wire bytes. ok is RSSTuple's ok.
//
//gf:hotpath
func RSSHash(frame []byte) (uint64, bool) {
	t, ok := RSSTuple(frame)
	if !ok {
		return 0, false
	}
	return t.SymHash(), true
}
