package packet

import (
	"bytes"
	"testing"

	"gigaflow/internal/flow"
)

// tcpKey builds a wire-faithful TCP key (every value representable on
// the wire, in_port and metadata zero unless set by the caller).
func tcpKey() flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthSrc, 0x02aabbccddee)
	k.Set(flow.FieldEthDst, 0x020102030405)
	k.Set(flow.FieldEthType, EtherTypeIPv4)
	k.Set(flow.FieldIPSrc, 0x0a000001)
	k.Set(flow.FieldIPDst, 0x0a000002)
	k.Set(flow.FieldIPProto, IPProtoTCP)
	k.Set(flow.FieldTpSrc, 49152)
	k.Set(flow.FieldTpDst, 443)
	return k
}

func TestDecodeEncodeRoundTripTCP(t *testing.T) {
	want := tcpKey()
	frame := Encode(want)
	if len(frame) != FrameLen(want) {
		t.Fatalf("frame len %d, FrameLen %d", len(frame), FrameLen(want))
	}
	if len(frame) != 14+20+20 {
		t.Fatalf("TCP frame length = %d, want 54", len(frame))
	}
	got, info := Decode(frame, 0)
	if !info.OK() {
		t.Fatalf("decode error %v", info.Err)
	}
	if info.Proto != ProtoTCP {
		t.Fatalf("proto = %v, want tcp", info.Proto)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeSetsInPort(t *testing.T) {
	k, _ := Decode(Encode(tcpKey()), 7)
	if k.Get(flow.FieldInPort) != 7 {
		t.Fatalf("in_port = %d, want 7", k.Get(flow.FieldInPort))
	}
	if k.Get(flow.FieldMeta) != 0 {
		t.Fatalf("metadata = %d, want 0 at ingress", k.Get(flow.FieldMeta))
	}
}

func TestDecodeEncodeRoundTripUDPAndICMP(t *testing.T) {
	udp := tcpKey().With(flow.FieldIPProto, IPProtoUDP).
		With(flow.FieldTpSrc, 53).With(flow.FieldTpDst, 5353)
	icmp := tcpKey().With(flow.FieldIPProto, IPProtoICMP).
		With(flow.FieldTpSrc, 8).With(flow.FieldTpDst, 0) // echo request
	other := tcpKey().With(flow.FieldIPProto, 47). // GRE: no ports
							With(flow.FieldTpSrc, 0).With(flow.FieldTpDst, 0)
	for _, tc := range []struct {
		name  string
		key   flow.Key
		proto Proto
		size  int
	}{
		{"udp", udp, ProtoUDP, 14 + 20 + 8},
		{"icmp", icmp, ProtoICMP, 14 + 20 + 8},
		{"gre", other, ProtoOtherIPv4, 14 + 20},
	} {
		frame := Encode(tc.key)
		if len(frame) != tc.size {
			t.Errorf("%s: frame length %d, want %d", tc.name, len(frame), tc.size)
		}
		got, info := Decode(frame, 0)
		if !info.OK() || info.Proto != tc.proto {
			t.Errorf("%s: info = %+v", tc.name, info)
		}
		if got != tc.key {
			t.Errorf("%s: round trip mismatch:\n got %s\nwant %s", tc.name, got, tc.key)
		}
	}
}

func TestDecodeNonIPv4IsL2Only(t *testing.T) {
	var k flow.Key
	k.Set(flow.FieldEthSrc, 0x02aabbccddee)
	k.Set(flow.FieldEthDst, 0xffffffffffff)
	k.Set(flow.FieldEthType, 0x0806) // ARP
	frame := Encode(k)
	if len(frame) != 14 {
		t.Fatalf("non-IPv4 frame length = %d, want 14", len(frame))
	}
	got, info := Decode(frame, 3)
	if !info.OK() {
		t.Fatalf("non-IPv4 must not be a decode error, got %v", info.Err)
	}
	if info.Proto != ProtoNonIPv4 {
		t.Fatalf("proto = %v", info.Proto)
	}
	want := k.With(flow.FieldInPort, 3)
	if got != want {
		t.Fatalf("L2 key mismatch:\n got %s\nwant %s", got, want)
	}
}

// vlanTag splices an 802.1Q tag with the given TPID and VID into an
// untagged frame.
func vlanTag(frame []byte, tpid, vid uint16) []byte {
	out := make([]byte, 0, len(frame)+4)
	out = append(out, frame[:12]...)
	out = appendBE16(out, tpid)
	out = appendBE16(out, vid&0x0fff)
	out = append(out, frame[12:]...)
	return out
}

func TestDecodeVLAN(t *testing.T) {
	want := tcpKey()
	tagged := vlanTag(Encode(want), EtherTypeVLAN, 42)
	got, info := Decode(tagged, 0)
	if !info.OK() {
		t.Fatalf("decode error %v", info.Err)
	}
	if info.VLAN != 42 {
		t.Fatalf("VLAN = %d, want 42", info.VLAN)
	}
	if got != want {
		t.Fatalf("VLAN decode mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeQinQ(t *testing.T) {
	want := tcpKey()
	tagged := vlanTag(vlanTag(Encode(want), EtherTypeVLAN, 100), EtherTypeQinQ, 7)
	got, info := Decode(tagged, 0)
	if !info.OK() {
		t.Fatalf("decode error %v", info.Err)
	}
	if info.VLAN != 7 { // outermost (service) tag wins
		t.Fatalf("VLAN = %d, want 7", info.VLAN)
	}
	if got != want {
		t.Fatalf("QinQ decode mismatch:\n got %s\nwant %s", got, want)
	}
	// A third tag is beyond the decoder's stack budget: L2-only, with
	// the undecoded TPID as the ethertype and the degradation flagged.
	triple := vlanTag(tagged, EtherTypeQinQ, 9)
	got, info = Decode(triple, 0)
	if info.Err != ErrVLANTooDeep {
		t.Fatalf("triple tag: err = %v, want vlan_too_deep", info.Err)
	}
	if got.Get(flow.FieldEthType) != EtherTypeVLAN {
		t.Fatalf("eth_type = %#x, want the residual TPID %#x",
			got.Get(flow.FieldEthType), EtherTypeVLAN)
	}
	if got.Get(flow.FieldIPSrc) != 0 {
		t.Fatal("triple-tagged frame must not reach L3")
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := Encode(tcpKey())
	cases := []struct {
		name  string
		frame []byte
		err   ErrCode
	}{
		{"empty", nil, ErrShortFrame},
		{"runt", valid[:10], ErrShortFrame},
		{"eth only header for ipv4", valid[:14], ErrIPv4Truncated},
		{"ipv4 cut mid-header", valid[:20], ErrIPv4Truncated},
		{"l4 truncated", valid[:36], ErrL4Truncated},
		{"vlan tag cut", vlanTag(valid, EtherTypeVLAN, 5)[:16], ErrVLANTruncated},
	}
	for _, tc := range cases {
		k, info := Decode(tc.frame, 1)
		if info.Err != tc.err {
			t.Errorf("%s: err = %v, want %v", tc.name, info.Err, tc.err)
		}
		if k.Get(flow.FieldInPort) != 1 {
			t.Errorf("%s: degraded key lost in_port", tc.name)
		}
	}

	bad := append([]byte(nil), valid...)
	bad[14] = 0x65 // version 6
	if _, info := Decode(bad, 0); info.Err != ErrIPv4BadVersion {
		t.Errorf("bad version: err = %v", info.Err)
	}
	bad[14] = 0x44 // version 4, IHL 4 (< minimum 5)
	if _, info := Decode(bad, 0); info.Err != ErrIPv4BadIHL {
		t.Errorf("bad IHL: err = %v", info.Err)
	}
	bad[14] = 0x4f // IHL 15: claims 60 header bytes the frame lacks
	if _, info := Decode(bad, 0); info.Err != ErrIPv4Truncated {
		t.Errorf("overlong IHL: err = %v", info.Err)
	}

	// Degraded keys keep the fields decoded before the defect.
	k, info := Decode(valid[:36], 1)
	if info.Err != ErrL4Truncated {
		t.Fatalf("err = %v", info.Err)
	}
	if k.Get(flow.FieldIPSrc) != 0x0a000001 || k.Get(flow.FieldTpDst) != 0 {
		t.Fatalf("L4-truncated key = %s", k)
	}
}

func TestDecodeIPv4Options(t *testing.T) {
	want := tcpKey()
	plain := Encode(want)
	// Rebuild with IHL 6: one 4-byte NOP-padded options word.
	frame := make([]byte, 0, len(plain)+4)
	frame = append(frame, plain[:14]...)
	frame = append(frame, plain[14:34]...)
	frame = append(frame, 1, 1, 1, 1) // four NOPs
	frame = append(frame, plain[34:]...)
	frame[14] = 0x46 // version 4, IHL 6
	got, info := Decode(frame, 0)
	if !info.OK() {
		t.Fatalf("decode error %v", info.Err)
	}
	if got != want {
		t.Fatalf("options decode mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestDecodeFragment(t *testing.T) {
	frame := Encode(tcpKey())
	frame[20] = 0x00
	frame[21] = 0xb9 // fragment offset 185: not the first fragment
	k, info := Decode(frame, 0)
	if !info.OK() {
		t.Fatalf("fragments are not decode errors, got %v", info.Err)
	}
	if !info.Fragment {
		t.Fatal("Fragment not flagged")
	}
	if k.Get(flow.FieldTpSrc) != 0 || k.Get(flow.FieldTpDst) != 0 {
		t.Fatalf("non-first fragment must not parse ports: %s", k)
	}
	if k.Get(flow.FieldIPProto) != IPProtoTCP {
		t.Fatal("fragment lost ip_proto")
	}
}

func TestEncodeIPv4Checksum(t *testing.T) {
	frame := Encode(tcpKey())
	// Verifying: summing the header including its checksum yields 0xffff.
	var sum uint32
	for i := 14; i < 34; i += 2 {
		sum += uint32(frame[i])<<8 | uint32(frame[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Fatalf("IPv4 header checksum does not verify: folded sum %#x", sum)
	}
}

func TestAppendFrameReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 128)
	a := AppendFrame(buf, tcpKey())
	b := AppendFrame(a[:0], tcpKey())
	if &a[0] != &b[0] {
		t.Fatal("AppendFrame reallocated despite sufficient capacity")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("repeated encode differs")
	}
}

func TestDecodeAllocFree(t *testing.T) {
	frame := Encode(tcpKey())
	n := testing.AllocsPerRun(200, func() {
		Decode(frame, 1)
	})
	if n != 0 {
		t.Fatalf("Decode allocates %v times per op, want 0", n)
	}
}

var (
	sinkKey  flow.Key
	sinkInfo Info
)

func BenchmarkDecode(b *testing.B) {
	tcp := Encode(tcpKey())
	vlan := vlanTag(tcp, EtherTypeVLAN, 42)
	udp := Encode(tcpKey().With(flow.FieldIPProto, IPProtoUDP))
	arp := Encode(tcpKey().With(flow.FieldEthType, 0x0806))
	for _, bc := range []struct {
		name  string
		frame []byte
	}{
		{"tcp", tcp}, {"vlan_tcp", vlan}, {"udp", udp}, {"l2_only", arp},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(bc.frame)))
			for i := 0; i < b.N; i++ {
				sinkKey, sinkInfo = Decode(bc.frame, 1)
			}
		})
	}
}

func BenchmarkEncode(b *testing.B) {
	k := tcpKey()
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], k)
	}
	sinkLen = len(buf)
}

var sinkLen int
