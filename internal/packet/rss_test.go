package packet

import (
	"bytes"
	"testing"

	"gigaflow/internal/flow"
)

// FuzzRSSHash holds the RSS extractor to its equivalence contract with
// the full decoder, for every input the fuzzer can produce:
//
//  1. RSSTuple succeeds iff Decode yields a clean IPv4 L3/L4 key
//     (Info.Err == ErrOK and a non-L2 protocol class) — the boundary
//     that decides whether a frame is decoded on its shard worker or
//     falls back to submitter-side decode.
//  2. On success, the extracted 5-tuple matches the decoded key's
//     field values exactly, so RSSHash == Key.SymHash and wire-hash
//     routing agrees with key-hash routing bit for bit.
//  3. The hash is endpoint-symmetric: hashing with src/dst swapped
//     (both IP and port) lands on the same shard.
//
// The seed corpus under testdata/fuzz/FuzzRSSHash pins the same frame
// shapes FuzzDecode covers (clean TCP/UDP/ICMP, VLAN and QinQ stacks,
// fragments, truncations, garbage); `make ci` replays it in regression
// mode.
func FuzzRSSHash(f *testing.F) {
	tcp := Encode(tcpKey())
	f.Add(tcp)
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, IPProtoUDP)))
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, IPProtoICMP).
		With(flow.FieldTpSrc, 8).With(flow.FieldTpDst, 0)))
	f.Add(Encode(tcpKey().With(flow.FieldIPProto, 47)))
	f.Add(Encode(tcpKey().With(flow.FieldEthType, 0x0806)))
	f.Add(vlanTag(tcp, EtherTypeVLAN, 42))
	f.Add(vlanTag(vlanTag(tcp, EtherTypeVLAN, 100), EtherTypeQinQ, 7))
	f.Add(vlanTag(vlanTag(vlanTag(tcp, EtherTypeVLAN, 1), EtherTypeVLAN, 2), EtherTypeVLAN, 3))
	f.Add(fragmentFrame(tcp))
	f.Add([]byte{})
	f.Add(tcp[:10])
	f.Add(tcp[:14])
	f.Add(tcp[:33])
	f.Add(tcp[:36])
	f.Add(vlanTag(tcp, EtherTypeVLAN, 5)[:16])
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, frame []byte) {
		tup, ok := RSSTuple(frame)
		k, info := Decode(frame, 0)

		clean := info.Err == ErrOK && info.Proto != ProtoNonIPv4
		if ok != clean {
			t.Fatalf("RSSTuple ok=%v but Decode gave proto=%v err=%v", ok, info.Proto, info.Err)
		}
		if !ok {
			if h, hok := RSSHash(frame); hok || h != 0 {
				t.Fatalf("RSSHash disagreed with RSSTuple: (%d, %v)", h, hok)
			}
			return
		}

		// The extractor's 5-tuple is the decoded key's 5-tuple.
		want := Tuple{
			SrcIP:   k.Get(flow.FieldIPSrc),
			DstIP:   k.Get(flow.FieldIPDst),
			Proto:   k.Get(flow.FieldIPProto),
			SrcPort: k.Get(flow.FieldTpSrc),
			DstPort: k.Get(flow.FieldTpDst),
		}
		if tup != want {
			t.Fatalf("tuple mismatch: extracted %+v, decoded %+v", tup, want)
		}

		// Therefore the wire hash equals the key's symmetric hash.
		h, hok := RSSHash(frame)
		if !hok || h != k.SymHash() {
			t.Fatalf("RSSHash = (%d, %v), key SymHash = %d", h, hok, k.SymHash())
		}

		// Endpoint symmetry: swapping src and dst (IP and port together)
		// must not move the flow to a different shard.
		rev := Tuple{SrcIP: tup.DstIP, DstIP: tup.SrcIP, Proto: tup.Proto,
			SrcPort: tup.DstPort, DstPort: tup.SrcPort}
		if rev.SymHash() != tup.SymHash() {
			t.Fatalf("SymHash not symmetric: fwd %d, rev %d", tup.SymHash(), rev.SymHash())
		}
	})
}

// fragmentFrame marks an encoded IPv4 frame as a non-first fragment
// (offset 1), the case where ports are unavailable but the frame is
// still cleanly decodable.
func fragmentFrame(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	out[ethHeaderLen+6] = 0x00
	out[ethHeaderLen+7] = 0x01
	return out
}

// TestRSSHashSymmetricOnWire re-encodes a flow's reverse direction as
// real frame bytes and checks the two frames hash to the same shard —
// the property conntrack-mode sharding relies on, proved on the wire
// path rather than on tuples.
func TestRSSHashSymmetricOnWire(t *testing.T) {
	fwdKey := tcpKey()
	revKey := fwdKey.
		With(flow.FieldIPSrc, fwdKey.Get(flow.FieldIPDst)).
		With(flow.FieldIPDst, fwdKey.Get(flow.FieldIPSrc)).
		With(flow.FieldTpSrc, fwdKey.Get(flow.FieldTpDst)).
		With(flow.FieldTpDst, fwdKey.Get(flow.FieldTpSrc))
	fwd, fok := RSSHash(Encode(fwdKey))
	rev, rok := RSSHash(Encode(revKey))
	if !fok || !rok {
		t.Fatal("clean TCP frames must extract")
	}
	if fwd != rev {
		t.Fatalf("wire hash not symmetric: fwd %d, rev %d", fwd, rev)
	}
	// And a different flow must (for this pair) shard differently, or
	// the symmetric hash would be degenerate.
	other, _ := RSSHash(Encode(fwdKey.With(flow.FieldTpSrc, fwdKey.Get(flow.FieldTpSrc)+1)))
	if other == fwd {
		t.Fatal("distinct flows collided — hash looks degenerate")
	}
}

// TestRSSTupleZeroAlloc: the extractor is //gf:hotpath and must not
// allocate — gflint proves it statically, this proves it dynamically.
func TestRSSTupleZeroAlloc(t *testing.T) {
	frame := Encode(tcpKey())
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := RSSHash(frame); !ok {
			t.Fatal("extraction failed")
		}
	}); n != 0 {
		t.Fatalf("RSSHash allocates %.1f/op, want 0", n)
	}
}

func BenchmarkRSSHash(b *testing.B) {
	frame := Encode(tcpKey())
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, ok := RSSHash(frame); !ok {
			b.Fatal("extraction failed")
		}
	}
}

func BenchmarkRSSHashVLAN(b *testing.B) {
	frame := vlanTag(Encode(tcpKey()), EtherTypeVLAN, 42)
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, ok := RSSHash(frame); !ok {
			b.Fatal("extraction failed")
		}
	}
}
