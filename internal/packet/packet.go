// Package packet is the wire-format boundary of the datapath: an
// allocation-free decoder from raw Ethernet frame bytes to the flow.Key
// the caches and pipeline consume, and an encoder that serializes a key
// back into a minimal valid frame.
//
// The decoder extracts exactly the nine LTM key fields of the paper's
// Figure 6 the way OVS's miniflow extraction does: Ethernet source,
// destination and type (802.1Q and QinQ tags are skipped, the inner
// ethertype wins), IPv4 source, destination and protocol, and the
// TCP/UDP ports (ICMP type/code map onto the port fields, OVS-style).
// The ingress port and metadata register are not wire fields: in_port is
// supplied by the caller (the NIC queue the frame arrived on) and
// metadata is always zero at ingress.
//
// Malformed input never panics. Frames whose L3/L4 headers are truncated
// or inconsistent degrade to the longest well-formed prefix — typically
// an L2-only key — with the failure recorded in Info.Err so callers can
// count it. Non-IPv4 ethertypes (ARP, IPv6, LLDP, ...) are not errors:
// they simply yield an L2-only key, matching the LTM field set, which
// has no fields for them.
package packet

// Well-known ethertypes and IPv4 protocol numbers the codec interprets.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeVLAN = 0x8100 // 802.1Q
	EtherTypeQinQ = 0x88a8 // 802.1ad service tag

	IPProtoICMP = 1
	IPProtoTCP  = 6
	IPProtoUDP  = 17
)

// Header sizes in bytes.
const (
	ethHeaderLen  = 14
	vlanTagLen    = 4
	ipv4MinHeader = 20
	tcpMinHeader  = 20
	udpHeaderLen  = 8
	icmpHeaderLen = 8
)

// maxVLANTags bounds how many stacked 802.1Q/802.1ad tags the decoder
// skips (an outer service tag plus the customer tag). Deeper stacks
// leave the remaining TPID as the key's ethertype, an L2-only decode.
const maxVLANTags = 2

// Proto classifies a decoded frame for accounting. It is dense so
// telemetry can index counter arrays by it.
type Proto uint8

const (
	// ProtoTCP is an IPv4 TCP frame.
	ProtoTCP Proto = iota
	// ProtoUDP is an IPv4 UDP frame.
	ProtoUDP
	// ProtoICMP is an IPv4 ICMP frame.
	ProtoICMP
	// ProtoOtherIPv4 is IPv4 with any other protocol number.
	ProtoOtherIPv4
	// ProtoNonIPv4 is every non-IPv4 ethertype (ARP, IPv6, LLDP, ...).
	ProtoNonIPv4

	// NumProtos is the number of protocol classes.
	NumProtos = int(ProtoNonIPv4) + 1
)

// String names the protocol class as telemetry labels spell it.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	case ProtoOtherIPv4:
		return "other_ipv4"
	case ProtoNonIPv4:
		return "non_ipv4"
	}
	return "invalid"
}

// ErrCode records how far a malformed frame got before decoding had to
// stop. It is a plain code rather than an error so the hot path never
// touches an interface; ErrOK means the frame decoded cleanly.
type ErrCode uint8

const (
	// ErrOK: the frame decoded without defects.
	ErrOK ErrCode = iota
	// ErrShortFrame: fewer than 14 bytes; not even an Ethernet header.
	// The key carries only the ingress port.
	ErrShortFrame
	// ErrVLANTruncated: a 802.1Q/QinQ TPID with no room for the tag.
	// The key is L2-only with the TPID as its ethertype.
	ErrVLANTruncated
	// ErrVLANTooDeep: more stacked tags than the decoder's budget of
	// maxVLANTags; the key is L2-only with the first undecoded TPID as
	// its ethertype.
	ErrVLANTooDeep
	// ErrIPv4Truncated: an IPv4 ethertype with fewer than 20 payload
	// bytes, or an IHL claiming more header than the frame holds.
	ErrIPv4Truncated
	// ErrIPv4BadVersion: the IP version nibble is not 4.
	ErrIPv4BadVersion
	// ErrIPv4BadIHL: the header-length nibble is below the legal
	// minimum of 5 words.
	ErrIPv4BadIHL
	// ErrL4Truncated: the transport header is cut short; the key keeps
	// its L3 fields and zero ports.
	ErrL4Truncated

	// NumErrCodes is the number of decode error codes (including ErrOK).
	NumErrCodes = int(ErrL4Truncated) + 1
)

// String names the error code as telemetry labels spell it.
func (e ErrCode) String() string {
	switch e {
	case ErrOK:
		return "ok"
	case ErrShortFrame:
		return "short_frame"
	case ErrVLANTruncated:
		return "vlan_truncated"
	case ErrVLANTooDeep:
		return "vlan_too_deep"
	case ErrIPv4Truncated:
		return "ipv4_truncated"
	case ErrIPv4BadVersion:
		return "ipv4_bad_version"
	case ErrIPv4BadIHL:
		return "ipv4_bad_ihl"
	case ErrL4Truncated:
		return "l4_truncated"
	}
	return "invalid"
}

// Info describes one decode: its protocol class, any defect encountered,
// and enough structure for telemetry and tests to reason about the frame
// without re-parsing it.
type Info struct {
	// Proto is the frame's protocol class.
	Proto Proto
	// Err is ErrOK for a clean decode, else the first defect hit.
	Err ErrCode
	// VLAN is the outermost 802.1Q VLAN ID (0 when untagged).
	VLAN uint16
	// Fragment reports a non-first IPv4 fragment: the transport header
	// lives in another frame, so the port fields stay zero (as OVS
	// leaves them).
	Fragment bool
	// HeaderLen is the number of frame bytes consumed as headers.
	HeaderLen int
	// TCPFlags holds the TCP flag byte (FIN/SYN/RST/PSH/ACK/URG/ECE/CWR)
	// for TCP frames whose header reaches the flag byte; zero otherwise.
	// The conntrack state machine keys its transitions off it.
	TCPFlags uint8
}

// TCP flag bits as they appear in the header flag byte (and in
// Info.TCPFlags).
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// OK reports whether the frame decoded without defects.
func (i Info) OK() bool { return i.Err == ErrOK }
