package packet

import "gigaflow/internal/flow"

// locateIPv4 walks the Ethernet header and any stacked VLAN tags and
// returns the offset of a well-formed IPv4 header, or -1 when the frame
// is not patchable IPv4 (wrong ethertype, truncated, bad version/IHL).
func locateIPv4(frame []byte) int {
	if len(frame) < ethHeaderLen {
		return -1
	}
	ethType := be16(frame[12:])
	off := ethHeaderLen
	for tags := 0; tags < maxVLANTags && (ethType == EtherTypeVLAN || ethType == EtherTypeQinQ); tags++ {
		if len(frame) < off+vlanTagLen {
			return -1
		}
		ethType = be16(frame[off+2:])
		off += vlanTagLen
	}
	if ethType != EtherTypeIPv4 || len(frame) < off+ipv4MinHeader {
		return -1
	}
	verIHL := frame[off]
	ihl := int(verIHL&0x0f) * 4
	if verIHL>>4 != 4 || ihl < ipv4MinHeader || len(frame) < off+ihl {
		return -1
	}
	return off
}

// ckAccum accumulates ones'-complement checksum deltas for RFC 1624
// incremental updates: for every rewritten 16-bit word m -> m', add
// ~m + m'. apply() folds the accumulator into an existing checksum.
type ckAccum uint32

func (a *ckAccum) replace16(old, new uint16) {
	*a += ckAccum(^old) + ckAccum(new)
}

func (a ckAccum) apply(ck uint16) uint16 {
	sum := uint32(^ck) + uint32(a)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

func put16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// PatchTuple rewrites an IPv4 frame's addresses and transport ports in
// place — the wire half of a NAT action — keeping every checksum valid:
// the IPv4 header checksum and the TCP/UDP checksum (which covers the
// pseudo-header) are updated incrementally per RFC 1624, so the payload
// never needs to be touched. A UDP checksum of zero (not computed) stays
// zero. Ports are left alone on non-first fragments and on transports
// without ports; ICMP type/code are not ports and are never rewritten.
//
// Returns false — with the frame unmodified — when the frame is not a
// patchable IPv4 frame.
func PatchTuple(frame []byte, ipSrc, ipDst uint32, tpSrc, tpDst uint16) bool {
	ip := locateIPv4(frame)
	if ip < 0 {
		return false
	}
	ihl := int(frame[ip]&0x0f) * 4
	proto := frame[ip+9]
	fragOff := be16(frame[ip+6:]) & 0x1fff

	var ipAcc, l4Acc ckAccum
	oldSrc, oldDst := uint32(be32(frame[ip+12:])), uint32(be32(frame[ip+16:]))
	ipAcc.replace16(uint16(oldSrc>>16), uint16(ipSrc>>16))
	ipAcc.replace16(uint16(oldSrc), uint16(ipSrc))
	ipAcc.replace16(uint16(oldDst>>16), uint16(ipDst>>16))
	ipAcc.replace16(uint16(oldDst), uint16(ipDst))
	l4Acc = ipAcc // the pseudo-header sees the same address rewrites
	put32(frame[ip+12:], ipSrc)
	put32(frame[ip+16:], ipDst)
	put16(frame[ip+10:], ipAcc.apply(be16(frame[ip+10:])))

	l4 := ip + ihl
	switch proto {
	case IPProtoTCP:
		if fragOff != 0 || len(frame) < l4+tcpMinHeader {
			return true // addresses patched; no reachable transport header
		}
		l4Acc.replace16(be16(frame[l4:]), tpSrc)
		l4Acc.replace16(be16(frame[l4+2:]), tpDst)
		put16(frame[l4:], tpSrc)
		put16(frame[l4+2:], tpDst)
		put16(frame[l4+16:], l4Acc.apply(be16(frame[l4+16:])))
	case IPProtoUDP:
		if fragOff != 0 || len(frame) < l4+udpHeaderLen {
			return true
		}
		l4Acc.replace16(be16(frame[l4:]), tpSrc)
		l4Acc.replace16(be16(frame[l4+2:]), tpDst)
		put16(frame[l4:], tpSrc)
		put16(frame[l4+2:], tpDst)
		if ck := be16(frame[l4+6:]); ck != 0 {
			nck := l4Acc.apply(ck)
			if nck == 0 {
				nck = 0xffff // computed-zero is transmitted as all-ones
			}
			put16(frame[l4+6:], nck)
		}
	}
	return true
}

// PatchFrameNAT rewrites frame's 5-tuple to match key k — the form NAT
// callers hold after the datapath has rewritten the flow key. Ethernet
// fields and non-tuple headers are untouched.
func PatchFrameNAT(frame []byte, k flow.Key) bool {
	return PatchTuple(frame,
		uint32(k.Get(flow.FieldIPSrc)), uint32(k.Get(flow.FieldIPDst)),
		uint16(k.Get(flow.FieldTpSrc)), uint16(k.Get(flow.FieldTpDst)))
}
