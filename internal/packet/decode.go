package packet

import "gigaflow/internal/flow"

// Decode extracts the LTM key fields from a raw Ethernet frame. inPort
// is the ingress port the frame arrived on (not a wire field); the
// metadata register is zero at ingress by definition.
//
// Decode never panics and never allocates: malformed frames degrade to
// the longest well-formed prefix of the key, with the defect recorded
// in Info.Err. See the package comment for the degradation rules.
//
//gf:hotpath
func Decode(frame []byte, inPort uint16) (flow.Key, Info) {
	var k flow.Key
	var info Info
	k.Set(flow.FieldInPort, uint64(inPort))

	if len(frame) < ethHeaderLen {
		info.Proto = ProtoNonIPv4
		info.Err = ErrShortFrame
		return k, info
	}
	k.Set(flow.FieldEthDst, be48(frame[0:]))
	k.Set(flow.FieldEthSrc, be48(frame[6:]))
	ethType := be16(frame[12:])
	off := ethHeaderLen

	// Skip stacked 802.1Q / 802.1ad tags; the inner ethertype is the
	// one the pipeline matches on (OVS behaviour). The outermost VID is
	// retained in Info for accounting.
	for tags := 0; tags < maxVLANTags && (ethType == EtherTypeVLAN || ethType == EtherTypeQinQ); tags++ {
		if len(frame) < off+vlanTagLen {
			k.Set(flow.FieldEthType, uint64(ethType))
			info.Proto = ProtoNonIPv4
			info.Err = ErrVLANTruncated
			info.HeaderLen = off
			return k, info
		}
		if tags == 0 {
			info.VLAN = be16(frame[off:]) & 0x0fff
		}
		ethType = be16(frame[off+2:])
		off += vlanTagLen
	}
	k.Set(flow.FieldEthType, uint64(ethType))
	info.HeaderLen = off

	if ethType == EtherTypeVLAN || ethType == EtherTypeQinQ {
		// Tags beyond the stack budget stay undecoded: an L2-only key
		// with the residual TPID as its ethertype, flagged so the
		// degradation is countable.
		info.Proto = ProtoNonIPv4
		info.Err = ErrVLANTooDeep
		return k, info
	}
	if ethType != EtherTypeIPv4 {
		// Non-IPv4 traffic degrades to an L2-only key by design: the
		// Figure 6 LTM field set has no fields for it. Not an error.
		info.Proto = ProtoNonIPv4
		return k, info
	}
	return decodeIPv4(frame, off, k, info)
}

// decodeIPv4 continues a decode past an IPv4 ethertype at offset off.
//
//gf:hotpath
func decodeIPv4(frame []byte, off int, k flow.Key, info Info) (flow.Key, Info) {
	info.Proto = ProtoOtherIPv4
	if len(frame) < off+ipv4MinHeader {
		info.Err = ErrIPv4Truncated
		return k, info
	}
	verIHL := frame[off]
	if verIHL>>4 != 4 {
		info.Err = ErrIPv4BadVersion
		return k, info
	}
	ihl := int(verIHL&0x0f) * 4
	if ihl < ipv4MinHeader {
		info.Err = ErrIPv4BadIHL
		return k, info
	}
	if len(frame) < off+ihl {
		// The IHL claims options the frame does not carry.
		info.Err = ErrIPv4Truncated
		return k, info
	}
	proto := frame[off+9]
	k.Set(flow.FieldIPSrc, be32(frame[off+12:]))
	k.Set(flow.FieldIPDst, be32(frame[off+16:]))
	k.Set(flow.FieldIPProto, uint64(proto))
	fragOff := be16(frame[off+6:]) & 0x1fff
	info.Fragment = fragOff != 0
	off += ihl
	info.HeaderLen = off

	switch proto {
	case IPProtoTCP:
		info.Proto = ProtoTCP
	case IPProtoUDP:
		info.Proto = ProtoUDP
	case IPProtoICMP:
		info.Proto = ProtoICMP
	default:
		// Other transports have no port concept; the key is complete.
		return k, info
	}
	if info.Fragment {
		// Non-first fragment: the transport header is in the first
		// fragment of the datagram. Ports stay zero, as OVS leaves them.
		return k, info
	}
	return decodeL4(frame, off, proto, k, info)
}

// decodeL4 extracts the transport ports (or ICMP type/code) at offset off.
//
//gf:hotpath
func decodeL4(frame []byte, off int, proto byte, k flow.Key, info Info) (flow.Key, Info) {
	switch proto {
	case IPProtoTCP, IPProtoUDP:
		// Only the port words are extracted; 4 bytes suffice even
		// though a full header is longer.
		if len(frame) < off+4 {
			info.Err = ErrL4Truncated
			return k, info
		}
		k.Set(flow.FieldTpSrc, uint64(be16(frame[off:])))
		k.Set(flow.FieldTpDst, uint64(be16(frame[off+2:])))
		info.HeaderLen = off + 4
		// The TCP flag byte feeds the conntrack state machine. A header
		// long enough for the ports but cut before byte 13 keeps the
		// 4-byte degrade above; flags just stay zero.
		if proto == IPProtoTCP && len(frame) >= off+14 {
			info.TCPFlags = frame[off+13]
			info.HeaderLen = off + 14
		}
	case IPProtoICMP:
		// ICMP type and code ride in the port fields, OVS-style.
		if len(frame) < off+2 {
			info.Err = ErrL4Truncated
			return k, info
		}
		k.Set(flow.FieldTpSrc, uint64(frame[off]))
		k.Set(flow.FieldTpDst, uint64(frame[off+1]))
		info.HeaderLen = off + 2
	}
	return k, info
}

// be16 reads a big-endian 16-bit word. The explicit length check keeps
// the bounds obvious to both the reader and the compiler.
//
//gf:hotpath
func be16(b []byte) uint16 {
	_ = b[1]
	return uint16(b[0])<<8 | uint16(b[1])
}

// be32 reads a big-endian 32-bit word.
//
//gf:hotpath
func be32(b []byte) uint64 {
	_ = b[3]
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// be48 reads a big-endian 48-bit MAC address.
//
//gf:hotpath
func be48(b []byte) uint64 {
	_ = b[5]
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}
