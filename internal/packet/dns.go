package packet

// DNS wire-format constants.
const (
	dnsHeaderLen = 12
	dnsMaxLabel  = 63
	// dnsMaxName bounds the decoded presentation-form name (labels joined
	// by dots). RFC 1035 caps the wire form at 255 octets; the dotted text
	// form fits in the same budget.
	dnsMaxName = 255
	// dnsMaxJumps bounds how many compression pointers one name may chase.
	// Legitimate messages need a handful; a loop would chase forever.
	dnsMaxJumps = 8
)

// DNS query/response types the load-balancer scenario cares about.
const (
	DNSTypeA    = 1
	DNSClassIN  = 1
	DNSPortWire = 53
)

// DNSQuery is the decoded header plus first question of a DNS message.
// The question name is held in a fixed buffer in presentation form
// ("www.example.com", no trailing dot) so decoding never allocates.
type DNSQuery struct {
	ID       uint16
	Response bool  // QR bit: true for responses
	Opcode   uint8 // standard query = 0
	QDCount  uint16
	QType    uint16
	QClass   uint16
	nameLen  int
	name     [dnsMaxName]byte
}

// Name returns the question name as a string. It allocates; call it off
// the packet path.
func (q *DNSQuery) Name() string { return string(q.name[:q.nameLen]) }

// NameBytes returns the question name without copying. The slice aliases
// the query's internal buffer.
func (q *DNSQuery) NameBytes() []byte { return q.name[:q.nameLen] }

// UDPPayload returns the UDP payload of a frame whose Decode reported a
// clean (or degraded-but-portful) UDP parse. info must be the Info that
// Decode returned for this frame: the payload starts one half-header
// past HeaderLen (Decode consumes only the 4 port bytes of the 8-byte
// UDP header). ok is false for non-UDP or truncated frames.
func UDPPayload(frame []byte, info Info) (payload []byte, ok bool) {
	if info.Proto != ProtoUDP || info.Fragment {
		return nil, false
	}
	off := info.HeaderLen + (udpHeaderLen - 4)
	if off > len(frame) {
		return nil, false
	}
	return frame[off:], true
}

// DecodeDNS parses the header and first question of a DNS message
// (a UDP payload, no length prefix). It never panics: truncated or
// hostile input — oversized labels, names past the 255-octet cap,
// compression-pointer loops, pointers past the message — returns
// ok=false with the query left partially filled. Messages with no
// question section also return ok=false; the load balancer has nothing
// to route on.
func DecodeDNS(payload []byte) (q DNSQuery, ok bool) {
	if len(payload) < dnsHeaderLen {
		return q, false
	}
	q.ID = be16(payload[0:])
	flags := be16(payload[2:])
	q.Response = flags&0x8000 != 0
	q.Opcode = uint8(flags >> 11 & 0x0f)
	q.QDCount = be16(payload[4:])
	if q.QDCount == 0 {
		return q, false
	}

	// Walk the first question name. Compression pointers (RFC 1035 §4.1.4)
	// may appear even in questions in hostile input; chase them with a
	// bounded jump budget so loops terminate.
	off := dnsHeaderLen
	jumps := 0
	afterPtr := -1 // offset of the fixed fields once a pointer is chased
	for {
		if off >= len(payload) {
			return q, false
		}
		b := payload[off]
		switch {
		case b == 0: // root label: name complete
			if afterPtr >= 0 {
				// A pointer-terminated name: the question's fixed fields
				// follow the first pointer, not the root label.
				off = afterPtr
			} else {
				off++
			}
			if len(payload) < off+4 {
				return q, false
			}
			q.QType = be16(payload[off:])
			q.QClass = be16(payload[off+2:])
			return q, true
		case b&0xc0 == 0xc0: // compression pointer
			if len(payload) < off+2 {
				return q, false
			}
			if afterPtr < 0 {
				afterPtr = off + 2
			}
			jumps++
			if jumps > dnsMaxJumps {
				return q, false
			}
			off = int(b&0x3f)<<8 | int(payload[off+1])
		case b&0xc0 != 0: // 0x40/0x80 label types are reserved
			return q, false
		default: // ordinary label of length b
			n := int(b)
			if n > dnsMaxLabel || off+1+n > len(payload) {
				return q, false
			}
			need := n
			if q.nameLen > 0 {
				need++ // joining dot
			}
			if q.nameLen+need > dnsMaxName {
				return q, false
			}
			if q.nameLen > 0 {
				q.name[q.nameLen] = '.'
				q.nameLen++
			}
			copy(q.name[q.nameLen:], payload[off+1:off+1+n])
			q.nameLen += n
			off += 1 + n
		}
	}
}

// AppendDNSQuery serializes a minimal standard A/IN query for name
// (presentation form, e.g. "www.example.com") appended to buf — the
// inverse of DecodeDNS for the query shapes the benchmarks generate.
// Empty labels (leading/trailing/double dots) are skipped rather than
// rejected; labels longer than 63 bytes are truncated.
func AppendDNSQuery(buf []byte, id uint16, name string) []byte {
	buf = appendBE16(buf, id)
	buf = append(buf, 0x01, 0x00) // RD set, standard query
	buf = appendBE16(buf, 1)      // QDCOUNT
	buf = append(buf, 0, 0, 0, 0, 0, 0)
	for len(name) > 0 {
		i := 0
		for i < len(name) && name[i] != '.' {
			i++
		}
		label := name[:i]
		if len(label) > dnsMaxLabel {
			label = label[:dnsMaxLabel]
		}
		if len(label) > 0 {
			buf = append(buf, byte(len(label)))
			buf = append(buf, label...)
		}
		if i == len(name) {
			break
		}
		name = name[i+1:]
	}
	buf = append(buf, 0) // root label
	buf = appendBE16(buf, DNSTypeA)
	buf = appendBE16(buf, DNSClassIN)
	return buf
}
