package pcap

import (
	"io"

	"gigaflow/internal/packet"
	"gigaflow/internal/traffic"
)

// WriteTrace serializes a synthesized traffic trace to a classic pcap
// stream, turning the generator's in-memory workloads into portable
// capture artifacts any pcap tool (or cmd/gfreplay) can consume.
//
// Each trace packet's key is encoded to a minimal wire frame via
// packet.AppendFrame; the trace's virtual nanosecond timestamps map
// directly onto the capture timestamps (epoch-relative, so a trace
// starting at t=0 starts at 1970 — deterministic by construction). The
// trace's Size field, which models the on-wire length, is preserved as
// the record's original length, with the encoded headers as the
// captured bytes — exactly how a snap-length-limited live capture of
// those packets would look.
func WriteTrace(w io.Writer, pkts []traffic.Packet, opts ...WriterOption) error {
	pw, err := NewWriter(w, opts...)
	if err != nil {
		return err
	}
	var buf []byte
	for i := range pkts {
		buf = packet.AppendFrame(buf[:0], pkts[i].Key)
		if err := pw.WriteRecord(pkts[i].Time, buf, pkts[i].Size); err != nil {
			return err
		}
	}
	return nil
}
