package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"gigaflow/internal/flow"
	"gigaflow/internal/packet"
	"gigaflow/internal/traffic"
)

func testFrames() [][]byte {
	var a, b flow.Key
	a.Set(flow.FieldEthSrc, 0x02aabbccddee)
	a.Set(flow.FieldEthDst, 0x020102030405)
	a.Set(flow.FieldEthType, packet.EtherTypeIPv4)
	a.Set(flow.FieldIPSrc, 0x0a000001)
	a.Set(flow.FieldIPDst, 0x0a000002)
	a.Set(flow.FieldIPProto, packet.IPProtoTCP)
	a.Set(flow.FieldTpSrc, 1234)
	a.Set(flow.FieldTpDst, 80)
	b = a.With(flow.FieldIPProto, packet.IPProtoUDP).With(flow.FieldTpDst, 53)
	c := a.With(flow.FieldEthType, 0x0806)
	return [][]byte{packet.Encode(a), packet.Encode(b), packet.Encode(c)}
}

func roundTrip(t *testing.T, opts ...WriterOption) {
	t.Helper()
	frames := testFrames()
	times := []int64{0, 1_500_000_000, 86_400_000_000_123}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if err := w.WritePacket(times[i], f); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type = %d", r.LinkType())
	}
	for i, f := range frames {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		wantTs := times[i]
		if !r.Nanosecond() {
			wantTs = wantTs / 1000 * 1000
		}
		if rec.TimeNs != wantTs {
			t.Errorf("record %d: ts = %d, want %d", i, rec.TimeNs, wantTs)
		}
		if !bytes.Equal(rec.Frame, f) {
			t.Errorf("record %d: frame bytes differ", i)
		}
		if rec.OrigLen != len(f) {
			t.Errorf("record %d: orig len = %d, want %d", i, rec.OrigLen, len(f))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
}

func TestRoundTripLittleEndianNanos(t *testing.T) { roundTrip(t) }

func TestRoundTripBigEndianNanos(t *testing.T) {
	roundTrip(t, WithByteOrder(binary.BigEndian))
}

func TestRoundTripLittleEndianMicros(t *testing.T) {
	roundTrip(t, WithMicrosecond())
}

func TestRoundTripBigEndianMicros(t *testing.T) {
	roundTrip(t, WithByteOrder(binary.BigEndian), WithMicrosecond())
}

func TestReaderRejectsGarbage(t *testing.T) {
	_, err := NewReader(bytes.NewReader(bytes.Repeat([]byte{0x42}, 64)))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	_, err = NewReader(bytes.NewReader([]byte{0xd4, 0xc3}))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short header err = %v, want unexpected EOF", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, testFrames()[0]); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestReaderRejectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, testFrames()[0]); err != nil {
		t.Fatal(err)
	}
	// Forge the record's incl_len into an absurd value: the reader must
	// refuse rather than trust it with an allocation.
	binary.LittleEndian.PutUint32(buf.Bytes()[24+8:], 1<<30)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("corrupt incl_len accepted: %v", err)
	}
}

func TestWriterSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithSnapLen(20))
	if err != nil {
		t.Fatal(err)
	}
	frame := testFrames()[0]
	if err := w.WritePacket(7, frame); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frame) != 20 {
		t.Fatalf("captured %d bytes, want snaplen 20", len(rec.Frame))
	}
	if rec.OrigLen != len(frame) {
		t.Fatalf("orig len = %d, want %d", rec.OrigLen, len(frame))
	}
	if !bytes.Equal(rec.Frame, frame[:20]) {
		t.Fatal("truncated bytes differ")
	}
}

func TestReaderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames()
	for i, f := range frames {
		if err := w.WritePacket(int64(i), f); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil { // prime the buffer
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(1, func() {
		// Remaining frames are no larger than the first? Not
		// guaranteed in general — so just assert the big first frame
		// primed a buffer the second read reuses.
		if _, err := r.Next(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if n > 0 {
		t.Fatalf("Next allocates %v times per record after priming", n)
	}
}

// traceKeySample builds wire-faithful keys for the bridge test.
func traceKeySample(ruleIdx int, rng *rand.Rand) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthSrc, 0x020000000000|uint64(rng.Intn(1<<24)))
	k.Set(flow.FieldEthDst, 0x020000000001)
	k.Set(flow.FieldEthType, packet.EtherTypeIPv4)
	k.Set(flow.FieldIPSrc, uint64(0x0a000000+rng.Intn(1<<16)))
	k.Set(flow.FieldIPDst, uint64(0x0a010000+ruleIdx))
	k.Set(flow.FieldIPProto, packet.IPProtoTCP)
	k.Set(flow.FieldTpSrc, uint64(1024+rng.Intn(60000)))
	k.Set(flow.FieldTpDst, 443)
	return k
}

func TestWriteTraceRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []WriterOption
	}{
		{"little_endian", nil},
		{"big_endian", []WriterOption{WithByteOrder(binary.BigEndian)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := traffic.Config{Seed: 11, NumFlows: 40, MaxPackets: 20}
			flows := traffic.GenerateFlows(cfg, traffic.UniformPicker(8), traceKeySample)
			pkts := traffic.Expand(cfg, flows)
			if len(pkts) == 0 {
				t.Fatal("empty trace")
			}

			var buf bytes.Buffer
			if err := WriteTrace(&buf, pkts, tc.opts...); err != nil {
				t.Fatal(err)
			}
			r, err := NewReader(&buf)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pkts {
				rec, err := r.Next()
				if err != nil {
					t.Fatalf("record %d: %v", i, err)
				}
				if rec.TimeNs != p.Time {
					t.Fatalf("record %d: ts = %d, want %d", i, rec.TimeNs, p.Time)
				}
				want := packet.Encode(p.Key)
				if !bytes.Equal(rec.Frame, want) {
					t.Fatalf("record %d: frame bytes differ from re-encoded key", i)
				}
				// The decoded key reproduces the trace key (modulo the
				// non-wire in_port/meta fields, zero in this trace).
				got, info := packet.Decode(rec.Frame, 0)
				if !info.OK() || got != p.Key {
					t.Fatalf("record %d: decode mismatch (info %+v)", i, info)
				}
			}
			if _, err := r.Next(); err != io.EOF {
				t.Fatalf("trailing data: %v", err)
			}
		})
	}
}
