// Package pcap reads and writes the classic libpcap capture format
// (the 24-byte global header with magic 0xa1b2c3d4, followed by
// per-packet records) using only the standard library. Both byte
// orders and both timestamp resolutions — the original microsecond
// magic and the 0xa1b23c4d nanosecond variant — are understood on
// read; writing defaults to little-endian nanosecond files, the
// highest-fidelity form for the repo's virtual-time traces.
//
// The reader streams: each Next decodes one record into a buffer
// reused across calls, so iterating a multi-gigabyte capture costs a
// single amortized allocation.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Classic pcap magic numbers, as they appear when read in the file's
// native byte order.
const (
	MagicMicros = 0xa1b2c3d4 // seconds + microseconds records
	MagicNanos  = 0xa1b23c4d // seconds + nanoseconds records
)

// LinkTypeEthernet is the only link type this repo produces (DLT_EN10MB).
const LinkTypeEthernet = 1

// DefaultSnapLen is the per-record capture limit written to new files
// and the sanity bound enforced on read when a file declares none.
const DefaultSnapLen = 262144

const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// ErrBadMagic reports a stream that does not begin with a classic pcap
// magic number in either byte order.
var ErrBadMagic = errors.New("pcap: bad magic (not a classic pcap file)")

// Record is one captured frame. Frame aliases the reader's internal
// buffer and is valid only until the next call to Next; callers that
// retain frames must copy.
type Record struct {
	// TimeNs is the capture timestamp in nanoseconds. Microsecond
	// files surface their timestamps multiplied up to nanoseconds.
	TimeNs int64
	// Frame is the captured bytes (up to the file's snap length).
	Frame []byte
	// OrigLen is the frame's original on-wire length, which exceeds
	// len(Frame) when the capture was truncated by the snap length.
	OrigLen int
}

// Reader streams records from a classic pcap file.
type Reader struct {
	r        io.Reader
	bo       binary.ByteOrder
	nanos    bool
	snapLen  uint32
	linkType uint32
	hdr      [recordHeaderLen]byte
	buf      []byte
}

// NewReader parses the global header, auto-detecting byte order and
// timestamp resolution from the magic number.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pcap: truncated file header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	pr := &Reader{r: r}
	switch binary.LittleEndian.Uint32(hdr[:4]) {
	case MagicMicros:
		pr.bo = binary.LittleEndian
	case MagicNanos:
		pr.bo, pr.nanos = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(hdr[:4]) {
		case MagicMicros:
			pr.bo = binary.BigEndian
		case MagicNanos:
			pr.bo, pr.nanos = binary.BigEndian, true
		default:
			return nil, ErrBadMagic
		}
	}
	pr.snapLen = pr.bo.Uint32(hdr[16:20])
	pr.linkType = pr.bo.Uint32(hdr[20:24])
	if pr.snapLen == 0 || pr.snapLen > DefaultSnapLen {
		// A zero or absurd snaplen must not let a corrupt record
		// header demand an arbitrary allocation below.
		pr.snapLen = DefaultSnapLen
	}
	return pr, nil
}

// Nanosecond reports whether the file uses the nanosecond magic.
func (r *Reader) Nanosecond() bool { return r.nanos }

// LinkType reports the file's declared link type (1 = Ethernet).
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen reports the file's per-record capture limit.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next record, or io.EOF at a clean end of stream. A
// record cut off mid-way surfaces io.ErrUnexpectedEOF; a record header
// whose captured length exceeds the snap length is rejected as corrupt
// rather than trusted with an allocation.
func (r *Reader) Next() (Record, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("pcap: truncated record header: %w", err)
		}
		return Record{}, err // io.EOF: clean end of capture
	}
	sec := r.bo.Uint32(r.hdr[0:4])
	frac := r.bo.Uint32(r.hdr[4:8])
	inclLen := r.bo.Uint32(r.hdr[8:12])
	origLen := r.bo.Uint32(r.hdr[12:16])
	if inclLen > r.snapLen {
		return Record{}, fmt.Errorf("pcap: record claims %d captured bytes (snaplen %d): corrupt file", inclLen, r.snapLen)
	}
	if cap(r.buf) < int(inclLen) {
		r.buf = make([]byte, inclLen)
	}
	r.buf = r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("pcap: truncated record body: %w", err)
	}
	ts := int64(sec) * 1_000_000_000
	if r.nanos {
		ts += int64(frac)
	} else {
		ts += int64(frac) * 1000
	}
	return Record{TimeNs: ts, Frame: r.buf, OrigLen: int(origLen)}, nil
}

// WriterOption customises a Writer.
type WriterOption func(*Writer)

// WithByteOrder selects the file's byte order (default little-endian,
// the order virtually all producers emit).
func WithByteOrder(bo binary.ByteOrder) WriterOption {
	return func(w *Writer) { w.bo = bo }
}

// WithMicrosecond writes the original microsecond format instead of
// the nanosecond variant, for consumers predating it. Timestamps are
// truncated to microsecond resolution.
func WithMicrosecond() WriterOption {
	return func(w *Writer) { w.nanos = false }
}

// WithSnapLen overrides the declared snap length. Frames longer than
// the snap length are truncated on write, as a live capture would.
func WithSnapLen(n uint32) WriterOption {
	return func(w *Writer) {
		if n > 0 {
			w.snapLen = n
		}
	}
}

// Writer emits a classic pcap stream.
type Writer struct {
	w       io.Writer
	bo      binary.ByteOrder
	nanos   bool
	snapLen uint32
	hdr     [recordHeaderLen]byte
}

// NewWriter writes the global header and returns a record writer. The
// default format is little-endian, nanosecond resolution, Ethernet
// link type, snap length DefaultSnapLen.
func NewWriter(w io.Writer, opts ...WriterOption) (*Writer, error) {
	pw := &Writer{w: w, bo: binary.LittleEndian, nanos: true, snapLen: DefaultSnapLen}
	for _, o := range opts {
		o(pw)
	}
	var hdr [fileHeaderLen]byte
	magic := uint32(MagicMicros)
	if pw.nanos {
		magic = MagicNanos
	}
	pw.bo.PutUint32(hdr[0:4], magic)
	pw.bo.PutUint16(hdr[4:6], 2) // version 2.4
	pw.bo.PutUint16(hdr[6:8], 4)
	// thiszone and sigfigs stay zero, as every producer writes them.
	pw.bo.PutUint32(hdr[16:20], pw.snapLen)
	pw.bo.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return pw, nil
}

// WritePacket writes one record whose on-wire length equals the frame
// length.
func (w *Writer) WritePacket(tsNs int64, frame []byte) error {
	return w.WriteRecord(tsNs, frame, len(frame))
}

// WriteRecord writes one record with an explicit original length,
// which callers use when the captured bytes are a truncation (or, for
// synthesized traces, a minimal reconstruction) of a longer frame.
func (w *Writer) WriteRecord(tsNs int64, frame []byte, origLen int) error {
	if len(frame) > int(w.snapLen) {
		frame = frame[:w.snapLen]
	}
	if origLen < len(frame) {
		origLen = len(frame)
	}
	sec := tsNs / 1_000_000_000
	frac := tsNs % 1_000_000_000
	if !w.nanos {
		frac /= 1000
	}
	w.bo.PutUint32(w.hdr[0:4], uint32(sec))
	w.bo.PutUint32(w.hdr[4:8], uint32(frac))
	w.bo.PutUint32(w.hdr[8:12], uint32(len(frame)))
	w.bo.PutUint32(w.hdr[12:16], uint32(origLen))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame)
	return err
}
