// Package gigaflow is a from-scratch Go implementation of Gigaflow —
// pipeline-aware sub-traversal caching for SmartNICs (Zulfiqar et al.,
// ASPLOS 2025) — together with every substrate the system needs: a
// programmable vSwitch pipeline engine, Microflow/Megaflow caches, TSS and
// NuevoMatch-style classifiers, a SmartNIC device model, ClassBench-style
// ruleset and CAIDA-style traffic generators, the Pipebench workload tool,
// five real-world pipeline models, and an end-to-end simulator
// reproducing the paper's evaluation.
//
// This file is the public facade: it re-exports the library's primary
// types and constructors so applications need a single import. The
// highest-level entry point is VSwitch, which couples a hardware cache
// (Gigaflow or Megaflow) with the slowpath pipeline, handling misses,
// rule generation, installation, revalidation, and idle expiry — the
// complete OVS-offload workflow of Figure 5.
package gigaflow

import (
	"io"

	"gigaflow/internal/flow"
	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/microflow"
	"gigaflow/internal/nic"
	"gigaflow/internal/ofp"
	"gigaflow/internal/pipeline"
	"gigaflow/internal/pipelines"
	"gigaflow/internal/telemetry"
)

// Flow model -----------------------------------------------------------

// Key is a concrete flow signature over the nine packet-header fields of
// the paper's LTM table plus the pipeline metadata register.
type Key = flow.Key

// Mask is a per-bit wildcard over a Key.
type Mask = flow.Mask

// Match is a ternary predicate: Key plus Mask.
type Match = flow.Match

// FieldID names one flow key field.
type FieldID = flow.FieldID

// Action is one packet-processing primitive (set-field, output, drop).
type Action = flow.Action

// Verdict is a packet's terminal fate.
type Verdict = flow.Verdict

// FieldSet is a bitset of fields.
type FieldSet = flow.FieldSet

// Flow key fields, in canonical order.
const (
	FieldInPort  = flow.FieldInPort
	FieldEthSrc  = flow.FieldEthSrc
	FieldEthDst  = flow.FieldEthDst
	FieldEthType = flow.FieldEthType
	FieldIPSrc   = flow.FieldIPSrc
	FieldIPDst   = flow.FieldIPDst
	FieldIPProto = flow.FieldIPProto
	FieldTpSrc   = flow.FieldTpSrc
	FieldTpDst   = flow.FieldTpDst
	FieldMeta    = flow.FieldMeta
	FieldCtState = flow.FieldCtState
)

// Verdict kinds (see flow.VerdictKind).
const (
	VerdictNone   = flow.VerdictNone
	VerdictOutput = flow.VerdictOutput
	VerdictDrop   = flow.VerdictDrop
)

// ct_state bits carried in FieldCtState (see internal/conntrack).
const (
	CtTrk = flow.CtTrk
	CtNew = flow.CtNew
	CtEst = flow.CtEst
	CtRel = flow.CtRel
	CtRpl = flow.CtRpl
	CtCls = flow.CtCls
)

// Action constructors and flow helpers.
var (
	SetField       = flow.SetField
	Output         = flow.Output
	Drop           = flow.Drop
	DNAT           = flow.DNAT
	SNAT           = flow.SNAT
	CtNAT          = flow.CtNAT
	ParseKey       = flow.ParseKey
	ParseMatch     = flow.ParseMatch
	MustParseKey   = flow.MustParseKey
	MustParseMatch = flow.MustParseMatch
	NewFieldSet    = flow.NewFieldSet
	ExactMatch     = flow.ExactMatch
	MatchAll       = flow.MatchAll
	PrefixMask     = flow.PrefixMask
)

// Pipeline -------------------------------------------------------------

// Pipeline is a programmable multi-table vSwitch pipeline.
type Pipeline = pipeline.Pipeline

// Rule is one pipeline table entry.
type Rule = pipeline.Rule

// Traversal is the record of one packet's walk through the pipeline —
// the ⟨T, F, W⟩ vector both cache compilers consume.
type Traversal = pipeline.Traversal

// NoTable marks a terminal rule (no goto-table).
const NoTable = pipeline.NoTable

// NATTarget is one backend endpoint of a NAT pool (see Pipeline.SetNATPool).
type NATTarget = pipeline.NATTarget

// NewPipeline creates an empty pipeline.
func NewPipeline(name string) *Pipeline { return pipeline.New(name) }

// LoadPipeline parses a textual pipeline program (ovs-ofctl-style; see
// internal/ofp for the grammar).
func LoadPipeline(r io.Reader) (*Pipeline, error) { return ofp.Load(r) }

// LoadPipelineString is LoadPipeline over a string.
func LoadPipelineString(s string) (*Pipeline, error) { return ofp.LoadString(s) }

// DumpPipeline writes a pipeline as a textual program that LoadPipeline
// reads back equivalently.
func DumpPipeline(w io.Writer, p *Pipeline) error { return ofp.Dump(w, p) }

// Caches ----------------------------------------------------------------

// Cache is the Gigaflow LTM cache (the paper's contribution): K
// feed-forward ternary tables holding sub-traversal rules.
type Cache = gfcache.Cache

// CacheConfig parameterises a Gigaflow cache.
type CacheConfig = gfcache.Config

// CacheEntry is one LTM rule ⟨τ, M, ρ, α⟩.
type CacheEntry = gfcache.Entry

// AdaptiveTuning adjusts profile-guided adaptation (CacheConfig.Adaptive).
type AdaptiveTuning = gfcache.AdaptiveConfig

// Partition is an ordered split of a traversal into sub-traversals.
type Partition = gfcache.Partition

// Scheme selects the partitioning strategy.
type Scheme = gfcache.Scheme

// Partitioning schemes (Fig. 16, plus the §7 profile-guided extension).
const (
	SchemeDisjoint = gfcache.SchemeDisjoint
	SchemeRandom   = gfcache.SchemeRandom
	SchemeOneToOne = gfcache.SchemeOneToOne
	SchemeProfile  = gfcache.SchemeProfile
)

// NewCache creates a Gigaflow cache bound to a pipeline.
func NewCache(p *Pipeline, cfg CacheConfig) *Cache { return gfcache.New(p, cfg) }

// MegaflowCache is the single-lookup wildcard cache baseline.
type MegaflowCache = megaflow.Cache

// NewMegaflowCache creates a Megaflow cache with the given entry limit.
func NewMegaflowCache(capacity int) *MegaflowCache { return megaflow.New(capacity) }

// MicroflowCache is the exact-match first-level cache.
type MicroflowCache = microflow.Cache

// NewMicroflowCache creates a Microflow cache with the given entry limit.
func NewMicroflowCache(capacity int) *MicroflowCache { return microflow.New(capacity) }

// SmartNIC model ---------------------------------------------------------

// Device is the SmartNIC hosting a hardware cache.
type Device = nic.Device

// DeviceConfig is the device envelope (hit latency, line rate).
type DeviceConfig = nic.Config

// NewDevice creates a SmartNIC hosting the given Gigaflow cache.
func NewDevice(cfg DeviceConfig, cache *Cache) *Device {
	return nic.New(cfg, nic.GigaflowBackend{Cache: cache})
}

// EstimateResources models the FPGA cost of an LTM configuration (§5).
var EstimateResources = nic.EstimateResources

// Telemetry --------------------------------------------------------------

// MetricsRegistry is a concurrent metrics registry (atomic counters,
// gauges, log2 histograms) with Prometheus-text and JSON exposition.
type MetricsRegistry = telemetry.Registry

// Tracer samples per-packet traversal traces into a bounded ring; attach
// to a VSwitch with WithTracer.
type Tracer = telemetry.Tracer

// TraversalTrace is one sampled packet's stage-by-stage record.
type TraversalTrace = telemetry.Trace

// TraceStage is one step within a TraversalTrace.
type TraceStage = telemetry.Stage

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewTracer creates a tracer sampling 1-in-sampleEvery packets (0
// disables) with a ring of buffer recent traces.
func NewTracer(sampleEvery, buffer int) *Tracer { return telemetry.NewTracer(sampleEvery, buffer) }

// Pipeline models --------------------------------------------------------

// PipelineSpec describes one of the paper's real-world pipelines (Table 1).
type PipelineSpec = pipelines.Spec

// StandardPipelines returns the five Table 1 pipeline models
// (OFD, PSC, OLS, ANT, OTL).
func StandardPipelines() []*PipelineSpec { return pipelines.All() }

// PipelineByName resolves a Table 1 pipeline by abbreviation.
var PipelineByName = pipelines.ByName
