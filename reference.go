package gigaflow

import (
	"fmt"

	"gigaflow/internal/conntrack"
	"gigaflow/internal/flow"
)

// Reference is the cache-free oracle the differential suite compares a
// VSwitch against: the same conntrack state machine, ct_state fold, and
// NAT resolution as a conntrack-enabled switch, but every packet takes
// the full pipeline traversal — nothing is ever cached, so no staleness
// is possible and its per-packet results define ground truth.
//
// Equivalence with the cached datapath is by construction, not by luck:
// the epoch counter advances only on connection creation, state
// transition, NAT binding, and removal, and the VSwitch's fast-path
// guard forces exactly those packets through a full Track — so both
// sides observe the same sequence of epoch-advancing events, the same
// BindHash inputs, and therefore the same NAT backends, given the same
// packet order and virtual clock.
//
// Like the VSwitch, a Reference is single-goroutine.
type Reference struct {
	pipe *Pipeline
	ct   *conntrack.Table
}

// NewReference builds a reference walker over p. maxConns sizes the
// conntrack table exactly as WithConntrack would (0 = unbounded); pass
// ct=false for a stateless reference (plain pipeline walk).
func NewReference(p *Pipeline, ct bool, maxConns int) *Reference {
	r := &Reference{pipe: p}
	if ct {
		r.ct = conntrack.NewTable(maxConns)
	}
	return r
}

// Conntrack returns the reference's connection table, or nil when
// stateless.
func (r *Reference) Conntrack() *conntrack.Table { return r.ct }

// ExpireIdle sweeps the reference's conntrack table with the same
// max-idle the VSwitch under test uses; call it in lockstep with the
// switch's sweep to keep connection lifetimes identical.
func (r *Reference) ExpireIdle(now, maxIdle int64) int {
	if r.ct == nil {
		return 0
	}
	return r.ct.ExpireIdle(now, maxIdle)
}

// Process handles one packet with no TCP flags; see ProcessMeta.
func (r *Reference) Process(k Key, now int64) (ProcessResult, error) {
	return r.ProcessMeta(k, 0, now)
}

// ProcessMeta runs one packet through the full slowpath — conntrack
// fold, NAT resolution, pipeline traversal — and returns the result a
// correct cached datapath must reproduce bit-identically.
func (r *Reference) ProcessMeta(k Key, tcpFlags uint8, now int64) (ProcessResult, error) {
	kt := k
	var conn *conntrack.Conn
	dir := conntrack.DirForward
	if r.ct != nil {
		var bits uint64
		bits, conn, dir = r.ct.Track(k, tcpFlags, now)
		kt = k.With(flow.FieldCtState, bits)
	}
	var tr *Traversal
	var err error
	if r.ct != nil {
		res := ctResolver{ct: r.ct, pipe: r.pipe, conn: conn, dir: dir}
		tr, err = r.pipe.ProcessResolve(kt, &res)
	} else {
		tr, err = r.pipe.Process(kt)
	}
	if err != nil {
		return ProcessResult{}, fmt.Errorf("gigaflow: reference: %w", err)
	}
	return ProcessResult{Verdict: tr.Verdict, Final: tr.FinalKey()}, nil
}
