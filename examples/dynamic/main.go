// Dynamic workloads (the paper's Fig. 18 scenario in miniature): a second
// wave of fresh flows arrives mid-run. The Megaflow baseline needs one
// cache entry per flow and collapses; Gigaflow's sub-traversal coverage
// absorbs the newcomers without slowpath trips.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"math/rand"

	"gigaflow"
)

const sec = int64(1_000_000_000)

// tenantKey synthesises a flow for tenant t (MAC + subnet) on service port.
func tenantKey(tenant, host, port uint64) gigaflow.Key {
	return gigaflow.MustParseKey("in_port=1,eth_type=0x0800,ip_proto=6").
		With(gigaflow.FieldEthDst, 0x020000000000|tenant).
		With(gigaflow.FieldIPDst, 0x0a000000|tenant<<16|host).
		With(gigaflow.FieldTpDst, port)
}

func buildPipeline(tenants, services int) *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("multi-tenant")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "svc", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	for t := 0; t < tenants; t++ {
		p.MustAddRule(0, gigaflow.MatchAll().WithField(gigaflow.FieldEthDst, 0x020000000000|uint64(t)), 10, nil, 1)
		m := gigaflow.MatchAll().WithMaskedField(gigaflow.FieldIPDst, 0x0a000000|uint64(t)<<16,
			gigaflow.PrefixMask(gigaflow.FieldIPDst, 16))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	for s := 0; s < services; s++ {
		p.MustAddRule(2, gigaflow.MatchAll().WithField(gigaflow.FieldTpDst, uint64(8000+s)), 10,
			[]gigaflow.Action{gigaflow.Output(uint16(s))}, gigaflow.NoTable)
	}
	return p
}

// run drives the two-wave workload against one vSwitch and returns the
// windowed hit-rate series.
func run(vs *gigaflow.VSwitch, label string) []float64 {
	const (
		tenants  = 32
		services = 64
		window   = 10 // seconds per sample
		duration = 120
		arrival  = 60 // second wave starts here
		perSec   = 400
	)
	rng := rand.New(rand.NewSource(7))
	var series []float64
	hits, total := 0, 0
	for s := 0; s < duration; s++ {
		for i := 0; i < perSec; i++ {
			now := int64(s)*sec + int64(i)*(sec/perSec)
			var tenant uint64
			if s < arrival {
				tenant = uint64(rng.Intn(tenants / 2)) // wave 1: tenants 0-15
			} else {
				tenant = uint64(rng.Intn(tenants)) // wave 2 adds tenants 16-31
			}
			k := tenantKey(tenant, uint64(rng.Intn(200)), uint64(8000+rng.Intn(services)))
			res, err := vs.Process(k, now)
			if err != nil {
				panic(err)
			}
			total++
			if res.CacheHit {
				hits++
			}
		}
		if (s+1)%window == 0 {
			series = append(series, float64(hits)/float64(total))
			hits, total = 0, 0
		}
	}
	fmt.Printf("%-28s entries=%-6d coverage=%d\n", label, vs.CacheEntries(), vs.Coverage())
	return series
}

func main() {
	const cacheBudget = 2048 // total entries for either cache

	gfVS := gigaflow.NewVSwitch(buildPipeline(32, 64),
		gigaflow.CacheConfig{NumTables: 4, TableCapacity: cacheBudget / 4})
	mfVS := gigaflow.NewVSwitch(buildPipeline(32, 64),
		gigaflow.CacheConfig{NumTables: 4, TableCapacity: cacheBudget / 4},
		gigaflow.WithMegaflowBackend(cacheBudget))

	fmt.Println("two-wave workload: 16 tenants, then 32 tenants from t=60s")
	fmt.Printf("equal cache budget: %d entries\n\n", cacheBudget)
	gf := run(gfVS, "gigaflow (4 tables)")
	mf := run(mfVS, "megaflow (single table)")

	fmt.Println("\nwindowed hit rate (%):")
	fmt.Println("  t(s)   gigaflow   megaflow")
	for i := range gf {
		marker := ""
		if (i+1)*10 > 60 && i*10 <= 60 {
			marker = "   <- second wave arrives"
		}
		fmt.Printf("  %3d    %6.1f     %6.1f%s\n", (i+1)*10, 100*gf[i], 100*mf[i], marker)
	}
}
