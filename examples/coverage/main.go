// Rule-space coverage (Table 2 in miniature): how K cache tables turn N
// cached sub-traversals into a cross product of megaflow-equivalent rules,
// and what that costs on the SmartNIC (§5's resource model).
//
//	go run ./examples/coverage
package main

import (
	"fmt"

	"gigaflow"
)

func main() {
	const (
		macs    = 16
		subnets = 16
		ports   = 16
	)
	p := gigaflow.NewPipeline("coverage-demo")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	for i := uint64(0); i < macs; i++ {
		p.MustAddRule(0, gigaflow.MatchAll().WithField(gigaflow.FieldEthDst, 0x0200+i), 10, nil, 1)
	}
	for i := uint64(0); i < subnets; i++ {
		m := gigaflow.MatchAll().WithMaskedField(gigaflow.FieldIPDst, 0x0a000000|i<<16,
			gigaflow.PrefixMask(gigaflow.FieldIPDst, 16))
		p.MustAddRule(1, m, 10, nil, 2)
	}
	for i := uint64(0); i < ports; i++ {
		p.MustAddRule(2, gigaflow.MatchAll().WithField(gigaflow.FieldTpDst, 8000+i), 10,
			[]gigaflow.Action{gigaflow.Output(uint16(i))}, gigaflow.NoTable)
	}

	vs := gigaflow.NewVSwitch(p, gigaflow.CacheConfig{NumTables: 3, TableCapacity: 64})

	// Seed the cache so every rule appears in at least one traversal: walk
	// the "diagonal" — macs[i] × subnets[i] × ports[i].
	key := func(mac, subnet, port uint64) gigaflow.Key {
		return gigaflow.Key{}.
			With(gigaflow.FieldEthDst, 0x0200+mac).
			With(gigaflow.FieldEthType, 0x0800).
			With(gigaflow.FieldIPDst, 0x0a000000|subnet<<16|7).
			With(gigaflow.FieldTpDst, 8000+port)
	}
	for i := uint64(0); i < macs; i++ {
		if _, err := vs.Process(key(i, i%subnets, i%ports), int64(i)); err != nil {
			panic(err)
		}
	}

	fmt.Printf("seeded %d flows -> %d cache entries\n", macs, vs.CacheEntries())
	fmt.Printf("rule-space coverage: %d megaflow-equivalent rules (%d × %d × %d)\n",
		vs.Coverage(), macs, subnets, ports)
	fmt.Printf("a Megaflow cache would need %d entries for the same coverage\n\n", macs*subnets*ports)

	// Prove the coverage is real: every combination hits in hardware.
	probes, hits := 0, 0
	for m := uint64(0); m < macs; m++ {
		for s := uint64(0); s < subnets; s++ {
			for pt := uint64(0); pt < ports; pt++ {
				res, err := vs.Process(key(m, s, pt), 1000)
				if err != nil {
					panic(err)
				}
				probes++
				if res.CacheHit {
					hits++
				}
			}
		}
	}
	fmt.Printf("probed all %d combinations: %d hardware hits (%.1f%%)\n\n",
		probes, hits, 100*float64(hits)/float64(probes))

	// What would this cache shape cost on the FPGA?
	fmt.Println("SmartNIC resource model (scaled from the paper's Alveo U250 prototype):")
	fmt.Printf("%8s %10s %8s %8s %8s %9s\n", "tables", "cap/table", "LUT%", "FF%", "BRAM%", "power W")
	for _, cfg := range [][2]int{{1, 32768}, {4, 8192}, {4, 32768}, {8, 65536}} {
		r := gigaflow.EstimateResources(cfg[0], cfg[1])
		note := ""
		if !r.Feasible {
			note = "  (exceeds the 75 W PCIe budget or chip resources)"
		}
		fmt.Printf("%8d %10d %8.1f %8.1f %8.1f %9.1f%s\n",
			cfg[0], cfg[1], r.LUTPct, r.FFPct, r.BRAMPct, r.PowerW, note)
	}
}
