// L2/L3/ACL policy switch: a PISCES-style pipeline under live policy
// churn. Demonstrates rule updates with selective revalidation (§4.3.1)
// and idle-timeout eviction (§4.3.2) through the public API.
//
//	go run ./examples/l2l3acl
package main

import (
	"fmt"

	"gigaflow"
)

const (
	milli = int64(1_000_000)
	sec   = int64(1_000_000_000)
)

func main() {
	p := buildPipeline()
	vs := gigaflow.NewVSwitch(p, gigaflow.CacheConfig{NumTables: 4, TableCapacity: 4096},
		gigaflow.WithMaxIdle(10*sec))

	// Tenant traffic: web and ssh flows to two subnets.
	var clock int64
	send := func(host, port uint64) gigaflow.ProcessResult {
		clock += 5 * milli
		k := gigaflow.MustParseKey("in_port=1,eth_dst=02:00:00:00:00:aa,eth_type=0x0800,ip_proto=6").
			With(gigaflow.FieldIPDst, 0x0a000100|host).
			With(gigaflow.FieldTpDst, port)
		res, err := vs.Process(k, clock)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Println("== warm up: 20 web flows + 5 ssh flows ==")
	for h := uint64(1); h <= 20; h++ {
		send(h, 80)
	}
	for h := uint64(1); h <= 5; h++ {
		send(h, 22)
	}
	report(vs, "after warm-up")

	fmt.Println("\n== repeat traffic: everything should hit in hardware ==")
	before := vs.Stats()
	for h := uint64(1); h <= 20; h++ {
		send(h, 80)
	}
	after := vs.Stats()
	fmt.Printf("20 packets, %d hits\n", after.CacheHits-before.CacheHits)

	fmt.Println("\n== policy change: block ssh (tp_dst=22) ==")
	// Find and replace the ssh-accept rule with a deny.
	for _, r := range p.Table(3).Rules() {
		if r.Match.Key.Get(gigaflow.FieldTpDst) == 22 {
			p.DeleteRule(r)
		}
	}
	p.MustAddRule(3, gigaflow.MustParseMatch("tp_dst=22"), 20,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)

	evicted, work := vs.Revalidate()
	fmt.Printf("revalidation: %d stale sub-traversals evicted with %d table lookups\n", evicted, work)
	fmt.Printf("(web sub-traversals survive: only the ssh segment was re-derived)\n")

	res := send(3, 22)
	fmt.Printf("ssh packet now: %s (cache hit: %v)\n", res.Verdict, res.CacheHit)
	res = send(3, 80)
	fmt.Printf("web packet still: %s (cache hit: %v)\n", res.Verdict, res.CacheHit)

	fmt.Println("\n== idle expiry: advance the clock 30s and sweep ==")
	clock += 30 * sec
	n := vs.ExpireIdle(clock)
	fmt.Printf("%d idle sub-traversals expired; %d entries remain\n", n, vs.CacheEntries())

	report(vs, "final")
}

func buildPipeline() *gigaflow.Pipeline {
	p := gigaflow.NewPipeline("l2l3acl")
	p.AddTable(0, "ingress", gigaflow.NewFieldSet(gigaflow.FieldInPort))
	p.AddTable(1, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(2, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(3, "acl", gigaflow.NewFieldSet(gigaflow.FieldIPProto, gigaflow.FieldTpDst))

	p.MustAddRule(0, gigaflow.MustParseMatch("in_port=1"), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:aa"), 10, nil, 2)
	p.MustAddRule(2, gigaflow.MustParseMatch("ip_dst=10.0.1.0/24"), 10,
		[]gigaflow.Action{gigaflow.SetField(gigaflow.FieldEthDst, 0x02ee)}, 3)
	p.MustAddRule(3, gigaflow.MustParseMatch("tp_dst=80"), 20,
		[]gigaflow.Action{gigaflow.Output(10)}, gigaflow.NoTable)
	p.MustAddRule(3, gigaflow.MustParseMatch("tp_dst=22"), 20,
		[]gigaflow.Action{gigaflow.Output(11)}, gigaflow.NoTable)
	p.SetMiss(3, gigaflow.NoTable, gigaflow.Drop())
	return p
}

func report(vs *gigaflow.VSwitch, label string) {
	st := vs.Stats()
	fmt.Printf("[%s] packets=%d hits=%d slowpath=%d entries=%d coverage=%d\n",
		label, st.Packets, st.CacheHits, st.Slowpath, vs.CacheEntries(), vs.Coverage())
}
