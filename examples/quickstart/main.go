// Quickstart: build a three-stage vSwitch pipeline, attach a Gigaflow
// cache, and watch sub-traversal sharing serve flows the cache never saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gigaflow"
)

func main() {
	// A miniature L2 → L3 → ACL pipeline: forward by MAC, route /24
	// prefixes (rewriting the source MAC), then filter by port.
	p := gigaflow.NewPipeline("quickstart")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "acl", gigaflow.NewFieldSet(gigaflow.FieldTpDst))

	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.1.0/24"), 10,
		[]gigaflow.Action{gigaflow.SetField(gigaflow.FieldEthSrc, 0x02aa)}, 2)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.2.0/24"), 10,
		[]gigaflow.Action{gigaflow.SetField(gigaflow.FieldEthSrc, 0x02bb)}, 2)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=443"), 10,
		[]gigaflow.Action{gigaflow.Output(2)}, gigaflow.NoTable)

	// The vSwitch pairs the pipeline with a 3-table Gigaflow LTM cache.
	vs := gigaflow.NewVSwitch(p, gigaflow.CacheConfig{NumTables: 3, TableCapacity: 1024})

	key := func(subnet, host, port uint64) gigaflow.Key {
		return gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
			With(gigaflow.FieldIPDst, 0x0a000000|subnet<<8|host).
			With(gigaflow.FieldTpDst, port)
	}

	show := func(label string, k gigaflow.Key, now int64) {
		res, err := vs.Process(k, now)
		if err != nil {
			panic(err)
		}
		src := "hit (SmartNIC)"
		if !res.CacheHit {
			src = "miss (slowpath)"
		}
		fmt.Printf("%-34s -> %-10s %s\n", label, res.Verdict, src)
	}

	fmt.Println("two seed flows take the slowpath and install sub-traversals:")
	show("flow A: 10.0.1.5:80", key(1, 5, 80), 0)
	show("flow B: 10.0.2.9:443", key(2, 9, 443), 1)

	fmt.Println("\nrepeat packets hit in hardware:")
	show("flow A again", key(1, 5, 80), 2)

	fmt.Println("\nand so do flows the cache has NEVER seen, by recombining")
	fmt.Println("cached sub-traversals (the purple paths of the paper's Fig. 5):")
	show("new flow: 10.0.1.77:443", key(1, 77, 443), 3)
	show("new flow: 10.0.2.42:80", key(2, 42, 80), 4)

	st := vs.Stats()
	fmt.Printf("\n%d packets, %d slowpath traversals, hit rate %.0f%%\n",
		st.Packets, st.Slowpath, 100*st.HitRate())
	fmt.Printf("cache entries: %d  rule-space coverage: %d megaflow-equivalents\n",
		vs.CacheEntries(), vs.Coverage())
}
