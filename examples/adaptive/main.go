// Profile-guided adaptation (the paper's §7 future work, implemented):
// when traffic offers no sub-traversal sharing, partitioning pays entry
// overhead for nothing — the cache notices and falls back to
// Megaflow-style whole-traversal entries, then returns to partitioning
// when sharing recovers.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"

	"gigaflow"
)

func buildPipeline(n uint64) *gigaflow.Pipeline {
	// Three stages whose rules never share anything across flows: the
	// adversarial zero-sharing case (each flow hits a unique rule chain).
	p := gigaflow.NewPipeline("adaptive-demo")
	p.AddTable(0, "a", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "b", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "c", gigaflow.NewFieldSet(gigaflow.FieldTpSrc))
	for i := uint64(0); i < n; i++ {
		p.MustAddRule(0, gigaflow.MatchAll().WithField(gigaflow.FieldEthDst, i), 10, nil, 1)
		p.MustAddRule(1, gigaflow.MatchAll().WithField(gigaflow.FieldIPDst, i), 10, nil, 2)
		p.MustAddRule(2, gigaflow.MatchAll().WithField(gigaflow.FieldTpSrc, i), 10,
			[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	}
	// Plus a shared service family: one L2/L3 prefix shared by hundreds of
	// per-port tails — classic pipeline-aware locality.
	p.MustAddRule(0, gigaflow.MatchAll().WithField(gigaflow.FieldEthDst, 0xffff), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MatchAll().WithMaskedField(gigaflow.FieldIPDst, 0x0a000000,
		gigaflow.PrefixMask(gigaflow.FieldIPDst, 8)), 10, nil, 2)
	for port := uint64(0); port < 200; port++ {
		p.MustAddRule(2, gigaflow.MatchAll().WithField(gigaflow.FieldTpSrc, 20000+port), 10,
			[]gigaflow.Action{gigaflow.Output(2)}, gigaflow.NoTable)
	}
	return p
}

func main() {
	const uniqueFlows = 2000
	p := buildPipeline(uniqueFlows)
	cache := gigaflow.NewCache(p, gigaflow.CacheConfig{
		NumTables: 3, TableCapacity: 8192,
		Adaptive:       true,
		AdaptiveTuning: gigaflow.AdaptiveTuning{Alpha: 0.05},
	})

	unique := func(i uint64) gigaflow.Key {
		return gigaflow.Key{}.
			With(gigaflow.FieldEthDst, i).
			With(gigaflow.FieldIPDst, i).
			With(gigaflow.FieldTpSrc, i)
	}
	shared := func(host, port uint64) gigaflow.Key {
		return gigaflow.Key{}.
			With(gigaflow.FieldEthDst, 0xffff).
			With(gigaflow.FieldIPDst, 0x0a000000|host).
			With(gigaflow.FieldTpSrc, 20000+port)
	}

	report := func(phase string) {
		mode := "partitioning (sub-traversals)"
		if cache.Degraded() {
			mode = "degraded (whole-traversal entries)"
		}
		fmt.Printf("%-34s sharing=%.3f  mode=%s  entries=%d\n",
			phase, cache.SharingEstimate(), mode, cache.Len())
	}

	fmt.Println("phase 1: zero-sharing traffic — every flow needs unique rules")
	now := int64(0)
	for i := uint64(0); i < uniqueFlows; i++ {
		now++
		if res := cache.Lookup(unique(i), now); !res.Hit {
			tr := p.MustProcess(unique(i))
			if _, err := cache.Insert(tr, now); err != nil {
				panic(err)
			}
		}
		if i == 400 || i == uniqueFlows-1 {
			report(fmt.Sprintf("  after %d unique flows", i+1))
		}
	}

	fmt.Println("\nphase 2: a hot shared service appears — periodic probation")
	fmt.Println("samples (§7's traffic sampling) notice the returning locality")
	for i := uint64(0); i < 3000; i++ {
		now++
		k := shared(i%97, i%200)
		if res := cache.Lookup(k, now); !res.Hit {
			tr := p.MustProcess(k)
			if _, err := cache.Insert(tr, now); err != nil {
				panic(err)
			}
		}
		if i == 500 || i == 2999 {
			report(fmt.Sprintf("  after %d shared-service flows", i+1))
		}
	}

	st := cache.Stats()
	fmt.Printf("\ntotals: %d traversals installed, %d entries created, %d shared reuses\n",
		st.InsertedTraversals, st.EntriesCreated, st.SharedReuse)
	fmt.Println("the cache switched itself to Megaflow behaviour under zero sharing")
	fmt.Println("and back to sub-traversal partitioning when locality returned (§7).")
}
