// Example telemetry starts a multi-worker service with the introspection
// endpoints enabled, drives traffic through it, and prints the address to
// scrape:
//
//	go run ./examples/telemetry
//	curl localhost:9090/metrics
//	curl localhost:9090/traces?n=3
//	curl localhost:9090/cache
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"gigaflow"
	"gigaflow/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "telemetry listen address (use :0 for a free port)")
	sample := flag.Int("trace-sample", 10, "trace 1 in N packets (0 disables)")
	upcall := flag.Int("upcall-workers", 0, "async slow-path goroutines (0 processes misses inline)")
	flag.Parse()

	p := gigaflow.NewPipeline("demo")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "l4", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.0.0/16"), 10, nil, 2)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=22"), 20,
		[]gigaflow.Action{gigaflow.Drop()}, gigaflow.NoTable)

	svc, err := service.New(p, service.Config{
		Workers:           2,
		Cache:             gigaflow.CacheConfig{NumTables: 3, TableCapacity: 3 * 1024},
		MicroflowCapacity: 256,
		TelemetryAddr:     *addr,
		TraceSample:       *sample,
		Upcall:            service.UpcallConfig{Workers: *upcall},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := svc.Start(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer svc.Close()
	fmt.Printf("telemetry on http://%s (ctrl-c to stop)\n", svc.TelemetryAddr())

	// Drive a steady mix of flows so every tier shows activity.
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	i := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			port := uint64(80)
			if i%17 == 0 {
				port = 22
			}
			k := gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
				With(gigaflow.FieldIPDst, 0x0a000000|uint64(i%64)).
				With(gigaflow.FieldTpDst, port)
			if _, err := svc.Submit(ctx, k); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, err)
			}
			i++
		}
	}
}
