package gigaflow

import "testing"

// TestParkCompleteMatchesInline drives the same key sequence through
// inline Process and through the park-mode protocol (ProcessPark, then
// CompleteMiss on the engine-traversed result — or ProcessMissInline for
// the overflow-fallback packets), on both backends with a Microflow
// tier. Results and every counter must be identical: parking defers the
// slow path, it must never change what is counted or returned.
func TestParkCompleteMatchesInline(t *testing.T) {
	for _, backend := range []string{"gigaflow", "megaflow"} {
		t.Run(backend, func(t *testing.T) {
			cfg := CacheConfig{NumTables: 3, TableCapacity: 64}
			opts := []VSwitchOption{WithMicroflow(32)}
			if backend == "megaflow" {
				opts = append(opts, WithMegaflowBackend(128))
			}
			inVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)
			pkVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)

			ports := []uint64{80, 22}
			var keys []Key
			for i := 0; i < 300; i++ {
				keys = append(keys, demoKey(uint64(i*7%41), ports[i%2]))
			}

			for i, k := range keys {
				now := int64(i)
				want, err := inVS.Process(k, now)
				if err != nil {
					t.Fatal(err)
				}

				got, parked, err := pkVS.ProcessPark(k, now)
				if err != nil {
					t.Fatal(err)
				}
				if parked {
					if i%3 == 0 {
						// Overflow fallback: finish the skipped punt inline.
						got, err = pkVS.ProcessMissInline(k, now)
					} else {
						// Engine path: traverse off to the side, complete.
						tr, terr := pkVS.Pipeline().Process(k)
						if terr != nil {
							t.Fatal(terr)
						}
						got, err = pkVS.CompleteMiss(k, tr, now, 100, 50)
					}
					if err != nil {
						t.Fatal(err)
					}
				} else if !got.CacheHit {
					t.Fatalf("packet %d: not parked yet not a hit: %+v", i, got)
				}
				if got != want {
					t.Fatalf("packet %d: park %+v != inline %+v", i, got, want)
				}
			}

			if ps, is := pkVS.Stats(), inVS.Stats(); ps != is {
				t.Errorf("VSwitchStats diverge: park %+v, inline %+v", ps, is)
			}
			if ps, is := pkVS.Microflow().Stats(), inVS.Microflow().Stats(); ps != is {
				t.Errorf("microflow stats diverge: park %+v, inline %+v", ps, is)
			}
			if backend == "gigaflow" {
				if ps, is := pkVS.Cache().Stats(), inVS.Cache().Stats(); ps != is {
					t.Errorf("gigaflow stats diverge: park %+v, inline %+v", ps, is)
				}
			} else {
				if ps, is := pkVS.Megaflow().Stats(), inVS.Megaflow().Stats(); ps != is {
					t.Errorf("megaflow stats diverge: park %+v, inline %+v", ps, is)
				}
			}
		})
	}
}

// TestProcessBatchParkFollowers pins the dedup-and-replay protocol for
// same-flow packets split across the park boundary: a batch holding
// several packets of the same cold flow parks all of them; one traversal
// completes the initiator and the followers are replayed through
// Process, and the end state must match inline ProcessBatch — where the
// first packet's miss installs and memoizes before later packets of the
// flow are looked up.
func TestProcessBatchParkFollowers(t *testing.T) {
	for _, backend := range []string{"gigaflow", "megaflow"} {
		t.Run(backend, func(t *testing.T) {
			cfg := CacheConfig{NumTables: 3, TableCapacity: 64}
			opts := []VSwitchOption{WithMicroflow(256)}
			if backend == "megaflow" {
				opts = append(opts, WithMegaflowBackend(128))
			}
			inVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)
			pkVS := NewVSwitch(buildDemoPipeline(), cfg, opts...)

			// 3 cold flows interleaved: every flow appears 3× in the batch.
			var keys []Key
			for rep := 0; rep < 3; rep++ {
				for f := uint64(0); f < 3; f++ {
					keys = append(keys, demoKey(f, 80))
				}
			}

			want := make([]ProcessResult, len(keys))
			werrs := make([]error, len(keys))
			inVS.ProcessBatch(keys, want, werrs, 0)

			got := make([]ProcessResult, len(keys))
			gerrs := make([]error, len(keys))
			parked := make([]bool, len(keys))
			pkVS.ProcessBatchPark(keys, got, gerrs, parked, 0)

			if st := pkVS.Stats(); st.Packets != 0 {
				t.Fatalf("parked-only batch counted %d packets", st.Packets)
			}

			// Dedup parked packets per flow in first-seen order, then run the
			// upcall protocol: one CompleteMiss per flow, followers replayed.
			groups := map[Key][]int{}
			var order []Key
			for i, p := range parked {
				if !p {
					t.Fatalf("packet %d of a cold batch not parked", i)
				}
				if _, seen := groups[keys[i]]; !seen {
					order = append(order, keys[i])
				}
				groups[keys[i]] = append(groups[keys[i]], i)
			}
			if len(order) != 3 {
				t.Fatalf("expected 3 pending flows, got %d", len(order))
			}
			for _, k := range order {
				idxs := groups[k]
				tr, err := pkVS.Pipeline().Process(k)
				if err != nil {
					t.Fatal(err)
				}
				// Second-chance lookup: an earlier flow's completion may have
				// installed a wildcard entry that covers this flow (inline,
				// this packet would have hit it). Only a still-missing flow
				// consumes its traversal.
				r, stillParked, err := pkVS.ProcessPark(k, 0)
				if err != nil {
					t.Fatal(err)
				}
				if stillParked {
					r, err = pkVS.CompleteMiss(k, tr, 0, 100, 50)
					if err != nil {
						t.Fatal(err)
					}
				}
				got[idxs[0]] = r
				for _, i := range idxs[1:] {
					got[i], gerrs[i] = pkVS.Process(keys[i], 0)
				}
			}

			for i := range keys {
				if werrs[i] != nil || gerrs[i] != nil {
					t.Fatalf("packet %d: errs inline=%v park=%v", i, werrs[i], gerrs[i])
				}
				if got[i] != want[i] {
					t.Fatalf("packet %d: park %+v != inline %+v", i, got[i], want[i])
				}
			}
			// VSwitchStats must match exactly. Tier-internal lookup/miss
			// counters are probe-effort counters and legitimately differ:
			// a follower probes the caches twice (once parking, once on
			// replay) where the inline batch probed once.
			if ps, is := pkVS.Stats(), inVS.Stats(); ps != is {
				t.Errorf("VSwitchStats diverge: park %+v, inline %+v", ps, is)
			}
			if ph, ih := pkVS.Microflow().Stats().Hits, inVS.Microflow().Stats().Hits; ph != ih {
				t.Errorf("microflow hits diverge: park %d, inline %d", ph, ih)
			}
		})
	}
}

// TestParkWarmPathZeroAlloc pins the park-mode warm path at zero
// allocations per operation: once a flow is cached, ProcessPark and
// ProcessBatchPark must be allocation-free exactly like Process — the
// offload machinery only ever spends memory on actual misses.
func TestParkWarmPathZeroAlloc(t *testing.T) {
	v := NewVSwitch(buildDemoPipeline(),
		CacheConfig{NumTables: 3, TableCapacity: 64},
		WithMicroflow(32))
	k := demoKey(1, 80)
	if _, _, err := v.ProcessPark(k, 0); err != nil {
		t.Fatal(err)
	}
	tr, err := v.Pipeline().Process(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.CompleteMiss(k, tr, 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		if _, parked, _ := v.ProcessPark(k, 1); parked {
			t.Fatal("warm flow parked")
		}
	}); allocs != 0 {
		t.Fatalf("ProcessPark warm path allocates %.1f/op, want 0", allocs)
	}

	keys := []Key{k, k, k, k}
	out := make([]ProcessResult, len(keys))
	errs := make([]error, len(keys))
	parked := make([]bool, len(keys))
	if allocs := testing.AllocsPerRun(1000, func() {
		v.ProcessBatchPark(keys, out, errs, parked, 2)
	}); allocs != 0 {
		t.Fatalf("ProcessBatchPark warm path allocates %.1f/op, want 0", allocs)
	}
}
