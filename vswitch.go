package gigaflow

import (
	"fmt"
	"sync"

	"gigaflow/internal/conntrack"
	"gigaflow/internal/flow"
	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/microflow"
	"gigaflow/internal/telemetry"
)

// VSwitch couples a hardware flow cache with the software slowpath: the
// complete Figure 5 workflow. Packets are first classified by the cache;
// on a miss the flow signature runs through the userspace pipeline, the
// resulting traversal is partitioned and compiled into cache rules, and
// the rules are installed so subsequent packets — including packets of
// *other* flows sharing sub-traversals — hit in hardware.
//
// VSwitch is not safe for concurrent use; drive it from one goroutine (the
// paper's configurations dedicate a single CPU core to the slowpath).
type VSwitch struct {
	pipe *Pipeline
	gf   *gfcache.Cache
	mf   *megaflow.Cache  // optional alternative backend
	uf   *microflow.Cache // optional exact-match first level
	ct   *conntrack.Table // optional connection tracking (stateful datapath)

	maxIdle   int64
	ctMaxIdle int64                      // conntrack idle expiry, independent of the cache tiers'
	tracer    *telemetry.Tracer          // optional traversal tracer (sampled)
	rec       *telemetry.LatencyRecorder // optional latency attribution + flight ring
	slowMu    *sync.Mutex                // optional slow-path traversal lock (async upcall mode)
	stats     VSwitchStats
}

// VSwitchStats counts end-to-end events.
//
// The cache hierarchy has two levels, counted separately: MicroflowHits
// are exact-match first-level hits, CacheHits are main-cache (Gigaflow or
// Megaflow) hits. Every packet is exactly one of MicroflowHits, CacheHits,
// or CacheMisses.
type VSwitchStats struct {
	Packets       uint64 `json:"packets"`
	MicroflowHits uint64 `json:"microflow_hits"` // exact-match first-level hits (if enabled)
	CacheHits     uint64 `json:"cache_hits"`     // main-cache hits (excludes microflow)
	CacheMisses   uint64 `json:"cache_misses"`
	Slowpath      uint64 `json:"slowpath"` // traversals executed
	Installs      uint64 `json:"installs"`
	InstallErrs   uint64 `json:"install_errs"`

	// Conntrack-mode counters; always zero when tracking is disabled.
	CtFastpath    uint64 `json:"ct_fastpath,omitempty"`    // microflow hits served under the epoch guard
	CtGuardFails  uint64 `json:"ct_guard_fails,omitempty"` // microflow entries dropped by the guard
	CtInvalidated uint64 `json:"ct_invalidated,omitempty"` // main-cache entries removed on stale epoch
}

// HitRate reports the main cache's hit rate over the packets that reached
// it: CacheHits / (CacheHits + CacheMisses). Packets absorbed by the
// Microflow tier never consult the main cache and are excluded; use
// TotalHitRate for the combined hierarchy rate the paper reports.
func (s *VSwitchStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// TotalHitRate reports the combined cache-hierarchy hit rate over all
// packets: (MicroflowHits + CacheHits) / Packets. This is the rate the
// paper's end-to-end figures quote; without a Microflow tier it equals
// HitRate.
func (s *VSwitchStats) TotalHitRate() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.MicroflowHits+s.CacheHits) / float64(s.Packets)
}

// VSwitchOption configures a VSwitch.
type VSwitchOption func(*VSwitch)

// WithMaxIdle enables idle expiry of cache entries (§4.3.2); call
// ExpireIdle periodically with the current virtual time.
func WithMaxIdle(ns int64) VSwitchOption {
	return func(v *VSwitch) { v.maxIdle = ns }
}

// WithMegaflowBackend replaces the Gigaflow cache with a Megaflow cache of
// the given capacity — the baseline configuration, useful for comparisons.
func WithMegaflowBackend(capacity int) VSwitchOption {
	return func(v *VSwitch) {
		v.gf = nil
		v.mf = megaflow.New(capacity)
	}
}

// WithMicroflow fronts the main cache with an exact-match Microflow tier
// of the given capacity, completing the OVS cache hierarchy (§2.1). It is
// invalidated wholesale on revalidation, as OVS does — exact entries carry
// no wildcard to recheck incrementally.
func WithMicroflow(capacity int) VSwitchOption {
	return func(v *VSwitch) { v.uf = microflow.New(capacity) }
}

// WithTracer attaches a sampling traversal tracer: 1-in-N processed
// packets record every stage they touch (microflow lookup, per-LTM-table
// matches, slowpath traversal, rule installation) with per-stage
// nanosecond timings into the tracer's ring. Unsampled packets pay one
// atomic increment; a nil tracer (or sampling disabled) costs a single
// branch and no allocation.
func WithTracer(t *telemetry.Tracer) VSwitchOption {
	return func(v *VSwitch) { v.tracer = t }
}

// WithLatencyRecorder attaches a latency attribution layer: every packet
// is timed (exactly on cold paths, run-estimated on hit runs — see
// telemetry.LatencyRecorder), attributed to the tier that resolved it,
// and logged into the recorder's flight ring. Like the VSwitch itself
// the recorder is single-threaded; give each VSwitch its own.
func WithLatencyRecorder(r *telemetry.LatencyRecorder) VSwitchOption {
	return func(v *VSwitch) { v.rec = r }
}

// WithSlowpathLock serializes every inline pipeline traversal this
// VSwitch performs (miss punts, overflow fallbacks, follower replays)
// against mu. The pipeline's TSS classifier keeps mutable per-lookup
// state, so when an external upcall engine traverses the same pipeline
// replica from its own goroutine, both sides must hold the same lock;
// the engine locks mu around its traversals, the VSwitch locks it here.
// The cache tiers and counters stay single-threaded on the goroutine
// driving the switch — only the traversal is contended. A nil mu (the
// default) keeps the slow path lock-free for strictly synchronous use.
func WithSlowpathLock(mu *sync.Mutex) VSwitchOption {
	return func(v *VSwitch) { v.slowMu = mu }
}

// NewVSwitch builds a vSwitch around a pipeline with a Gigaflow cache of
// the given configuration.
func NewVSwitch(p *Pipeline, cfg CacheConfig, opts ...VSwitchOption) *VSwitch {
	v := &VSwitch{pipe: p, gf: gfcache.New(p, cfg)}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Pipeline returns the slowpath pipeline.
func (v *VSwitch) Pipeline() *Pipeline { return v.pipe }

// Cache returns the Gigaflow cache, or nil when running with the Megaflow
// backend.
func (v *VSwitch) Cache() *gfcache.Cache { return v.gf }

// Megaflow returns the Megaflow cache, or nil when running with the
// Gigaflow backend.
func (v *VSwitch) Megaflow() *megaflow.Cache { return v.mf }

// Microflow returns the exact-match first-level cache, or nil when the
// tier is disabled.
func (v *VSwitch) Microflow() *microflow.Cache { return v.uf }

// Stats returns a snapshot of the counters.
func (v *VSwitch) Stats() VSwitchStats { return v.stats }

// Recorder returns the attached latency recorder, or nil. Its methods
// must run on the goroutine driving the switch.
func (v *VSwitch) Recorder() *telemetry.LatencyRecorder { return v.rec }

// ProcessResult describes one packet's handling.
type ProcessResult struct {
	Verdict Verdict
	Final   Key
	// CacheHit reports whether a cache (Microflow or the main cache)
	// handled the packet without the slowpath.
	CacheHit bool
	// MicroflowHit reports whether the exact-match first level served it.
	MicroflowHit bool
}

// Process handles one packet at virtual time now (nanoseconds): Microflow
// exact-match (if enabled), main cache lookup, slowpath on miss, rule
// installation. This function is the packet fast path — the body below is
// the entire per-packet cost for cache hits, and gflint's hotalloc check
// holds it to zero heap allocations. Everything cold lives in unannotated
// callees: sampled packets divert to processTraced, misses to processMiss.
//
//gf:hotpath
func (v *VSwitch) Process(k Key, now int64) (ProcessResult, error) {
	return v.ProcessMeta(k, 0, now)
}

// ProcessMeta is Process with packet metadata the flow key does not
// carry: the TCP flag byte, which drives the conntrack state machine
// when connection tracking is enabled (and is ignored otherwise). With
// conntrack on, the packet is tracked, its ct_state bits are folded into
// the key the main cache and slowpath see, connection-dependent cache
// entries are validated against the connection's current epoch on every
// hit, and memoized microflow results serve only under the ctServe
// guard. With conntrack off the body reduces exactly to the stateless
// datapath.
//
//gf:hotpath
func (v *VSwitch) ProcessMeta(k Key, tcpFlags uint8, now int64) (ProcessResult, error) {
	v.stats.Packets++
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	if v.tracer != nil {
		if tb := v.tracer.Start(); tb != nil {
			return v.processTraced(k, tcpFlags, now, tb)
		}
	}
	if v.uf != nil {
		if e, ok := v.uf.Lookup(k, now); ok {
			if v.ct == nil || v.ctServe(e, k, tcpFlags, now) {
				v.stats.MicroflowHits++
				if v.rec != nil {
					v.rec.Hit(telemetry.TierMicroflow, v.uf.LastHash())
					v.rec.EndBatch()
				}
				return ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}, nil
			}
			// Stale or transition-capable: drop the memo, take the full path.
			v.uf.Remove(k)
			v.stats.CtGuardFails++
		}
	}
	kt, conn, dir := k, (*conntrack.Conn)(nil), conntrack.DirForward
	tier := telemetry.TierSlowpath
	if v.ct != nil {
		var bits uint64
		bits, conn, dir = v.ct.Track(k, tcpFlags, now)
		kt = k.With(flow.FieldCtState, bits)
	}
	if v.gf != nil {
		res := v.gf.Lookup(kt, now)
		if res.Hit {
			if v.ct == nil || v.ctPathValid(res.Path) {
				v.stats.CacheHits++
				v.memoizeCt(k, res.Final, res.Verdict, now, conn, dir)
				if v.rec != nil {
					v.rec.Hit(telemetry.TierGigaflow, kt.FlowHash())
					v.rec.EndBatch()
				}
				return ProcessResult{Verdict: res.Verdict, Final: res.Final, CacheHit: true}, nil
			}
			tier = telemetry.TierConntrack // stale entries revoked: replay
		}
	} else if e, ok := v.mf.Lookup(kt, now); ok {
		if v.ct == nil || e.CtEpoch == 0 || v.ct.EpochValid(e.CtConn, e.CtEpoch) {
			v.stats.CacheHits++
			final, verdict := e.Apply(kt)
			v.memoizeCt(k, final, verdict, now, conn, dir)
			if v.rec != nil {
				v.rec.Hit(telemetry.TierMegaflow, kt.FlowHash())
				v.rec.EndBatch()
			}
			return ProcessResult{Verdict: verdict, Final: final, CacheHit: true}, nil
		}
		v.mf.Remove(e)
		v.stats.CtInvalidated++
		tier = telemetry.TierConntrack
	}
	return v.processMissCt(k, kt, conn, dir, tier, now, nil)
}

// ProcessBatch handles len(keys) packets at virtual time now, writing
// packet i's result to out[i] and its error to errs[i]; out and errs must
// be at least len(keys) long. It is semantically identical to calling
// Process(keys[i], now) in order — packets are processed strictly
// in sequence through the full hierarchy, so a miss's installed rules and
// Microflow memoization are visible to later packets in the same batch and
// the resulting VSwitchStats match a sequential replay exactly.
//
// What batching buys is amortized bookkeeping: the VSwitch counters and
// each cache tier's counters are accumulated in locals and flushed once
// per batch instead of once per packet. Like Process, the loop body is
// allocation-free; sampled packets divert to processTraced and misses to
// processMiss, which update their counters directly (flushing local
// deltas on top keeps the totals exact — the two never count the same
// packet).
//
//gf:hotpath
func (v *VSwitch) ProcessBatch(keys []Key, out []ProcessResult, errs []error, now int64) {
	v.ProcessBatchMeta(keys, nil, out, errs, now)
}

// ProcessBatchMeta is ProcessBatch with per-packet TCP flag bytes for the
// conntrack state machine; flags may be nil (all packets read as
// flagless) and is otherwise indexed in step with keys. See ProcessMeta
// for the conntrack semantics; with tracking disabled the body reduces
// exactly to the stateless batch path.
//
//gf:hotpath
func (v *VSwitch) ProcessBatchMeta(keys []Key, flags []uint8, out []ProcessResult, errs []error, now int64) {
	if len(keys) == 0 {
		return
	}
	_ = out[len(keys)-1]
	_ = errs[len(keys)-1]
	if flags != nil {
		_ = flags[len(keys)-1]
	}
	var packets, ufHits, mainHits uint64
	var ufb microflow.BatchLookup
	var gfb gfcache.BatchLookup
	var mfb megaflow.BatchLookup
	if v.uf != nil {
		ufb = v.uf.BatchLookup()
	}
	if v.gf != nil {
		gfb = v.gf.BatchLookup()
	} else {
		mfb = v.mf.BatchLookup()
	}
	if v.rec != nil {
		v.rec.BeginBatch(now)
	}
	for i := range keys {
		k := keys[i]
		var fl uint8
		if flags != nil {
			fl = flags[i]
		}
		packets++
		errs[i] = nil
		if v.tracer != nil {
			if tb := v.tracer.Start(); tb != nil {
				out[i], errs[i] = v.processTraced(k, fl, now, tb)
				continue
			}
		}
		if v.uf != nil {
			if e, ok := ufb.Lookup(k, now); ok {
				if v.ct == nil || v.ctServe(e, k, fl, now) {
					ufHits++
					if v.rec != nil {
						v.rec.Hit(telemetry.TierMicroflow, v.uf.LastHash())
					}
					out[i] = ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}
					continue
				}
				v.uf.Remove(k)
				v.stats.CtGuardFails++
			}
		}
		kt, conn, dir := k, (*conntrack.Conn)(nil), conntrack.DirForward
		tier := telemetry.TierSlowpath
		if v.ct != nil {
			var bits uint64
			bits, conn, dir = v.ct.Track(k, fl, now)
			kt = k.With(flow.FieldCtState, bits)
		}
		if v.gf != nil {
			res := gfb.Lookup(kt, now)
			if res.Hit {
				if v.ct == nil || v.ctPathValid(res.Path) {
					mainHits++
					v.memoizeCt(k, res.Final, res.Verdict, now, conn, dir)
					if v.rec != nil {
						v.rec.Hit(telemetry.TierGigaflow, kt.FlowHash())
					}
					out[i] = ProcessResult{Verdict: res.Verdict, Final: res.Final, CacheHit: true}
					continue
				}
				tier = telemetry.TierConntrack
			}
		} else if e, ok := mfb.Lookup(kt, now); ok {
			if v.ct == nil || e.CtEpoch == 0 || v.ct.EpochValid(e.CtConn, e.CtEpoch) {
				mainHits++
				final, verdict := e.Apply(kt)
				v.memoizeCt(k, final, verdict, now, conn, dir)
				if v.rec != nil {
					v.rec.Hit(telemetry.TierMegaflow, kt.FlowHash())
				}
				out[i] = ProcessResult{Verdict: verdict, Final: final, CacheHit: true}
				continue
			}
			v.mf.Remove(e)
			v.stats.CtInvalidated++
			tier = telemetry.TierConntrack
		}
		out[i], errs[i] = v.processMissCt(k, kt, conn, dir, tier, now, nil)
	}
	if v.rec != nil {
		v.rec.EndBatch()
	}
	v.stats.Packets += packets
	v.stats.MicroflowHits += ufHits
	v.stats.CacheHits += mainHits
	ufb.Flush()
	gfb.Flush()
	mfb.Flush()
}

// processTraced is Process for the 1-in-N sampled packets: the same
// lookup chain with every stage timed and recorded into tb. Sampled
// packets are allowed to allocate — that is the sampling contract. Their
// flight records are stamped exactly and carry FlightTraced, but they
// are excluded from the tier latency histograms: a traced packet's
// latency includes the tracing work itself, and folding that in would
// report the observer as the tail.
//
//gf:hotpath-safe sampled 1-in-N diversion; tracing allocates and reads the clock by contract
func (v *VSwitch) processTraced(k Key, tcpFlags uint8, now int64, tb *telemetry.TraceBuilder) (ProcessResult, error) {
	if v.rec != nil {
		v.rec.ColdBegin()
	}
	tb.SetKey(k.String())
	if v.uf != nil {
		tb.Begin("microflow")
		e, ok := v.uf.Lookup(k, now)
		served := ok && (v.ct == nil || v.ctServe(e, k, tcpFlags, now))
		tb.End(served)
		if served {
			v.stats.MicroflowHits++
			tb.Finish(e.Verdict.String(), true, true, nil)
			if v.rec != nil {
				v.rec.Cold(telemetry.TierMicroflow, k.FlowHash(), telemetry.FlightTraced)
			}
			return ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}, nil
		}
		if ok {
			v.uf.Remove(k)
			v.stats.CtGuardFails++
		}
	}
	kt, conn, dir := k, (*conntrack.Conn)(nil), conntrack.DirForward
	tier := telemetry.TierSlowpath
	if v.ct != nil {
		tb.Begin("conntrack")
		var bits uint64
		bits, conn, dir = v.ct.Track(k, tcpFlags, now)
		kt = k.With(flow.FieldCtState, bits)
		tb.End(conn != nil)
	}
	if v.gf != nil {
		tb.Begin("gigaflow")
		res := v.gf.Lookup(kt, now)
		valid := res.Hit && (v.ct == nil || v.ctPathValid(res.Path))
		tb.End(valid)
		for _, e := range res.Path {
			tb.Note("ltm-table", e.TableIndex(), e.Tag, e.Priority)
		}
		if valid {
			v.stats.CacheHits++
			v.memoizeCt(k, res.Final, res.Verdict, now, conn, dir)
			tb.Finish(res.Verdict.String(), true, false, nil)
			if v.rec != nil {
				v.rec.Cold(telemetry.TierGigaflow, kt.FlowHash(), telemetry.FlightTraced)
			}
			return ProcessResult{Verdict: res.Verdict, Final: res.Final, CacheHit: true}, nil
		}
		if res.Hit {
			tier = telemetry.TierConntrack
		}
	} else {
		tb.Begin("megaflow")
		e, ok := v.mf.Lookup(kt, now)
		valid := ok && (v.ct == nil || e.CtEpoch == 0 || v.ct.EpochValid(e.CtConn, e.CtEpoch))
		tb.End(valid)
		if valid {
			v.stats.CacheHits++
			final, verdict := e.Apply(kt)
			v.memoizeCt(k, final, verdict, now, conn, dir)
			tb.Finish(verdict.String(), true, false, nil)
			if v.rec != nil {
				v.rec.Cold(telemetry.TierMegaflow, kt.FlowHash(), telemetry.FlightTraced)
			}
			return ProcessResult{Verdict: verdict, Final: final, CacheHit: true}, nil
		}
		if ok {
			v.mf.Remove(e)
			v.stats.CtInvalidated++
			tier = telemetry.TierConntrack
		}
	}
	return v.processMissCt(k, kt, conn, dir, tier, now, tb)
}

// processMiss punts a main-cache miss to the slowpath: full pipeline
// traversal, partitioning, and rule installation. tb is nil unless the
// packet is being traced.
//
//gf:hotpath-safe slowpath traversal and rule install; misses are µs-scale and allocate by design
func (v *VSwitch) processMiss(k Key, now int64, tb *telemetry.TraceBuilder) (ProcessResult, error) {
	return v.processMissCt(k, k, nil, conntrack.DirForward, telemetry.TierSlowpath, now, tb)
}

// processMissCt is processMiss with the conntrack context threaded
// through: kt is the lookup key with ct_state folded in (equal to k when
// tracking is off), conn/dir the packet's tracked connection, and tier
// the latency tier the miss is attributed to (TierConntrack when a stale
// connection-dependent entry forced the replay).
//
//gf:hotpath-safe slowpath traversal and rule install; misses are µs-scale and allocate by design
func (v *VSwitch) processMissCt(k, kt Key, conn *conntrack.Conn, dir conntrack.Dir,
	tier telemetry.Tier, now int64, tb *telemetry.TraceBuilder) (ProcessResult, error) {
	if v.rec != nil {
		v.rec.ColdBegin() // no-op when arriving via processTraced
	}
	flightFlags := telemetry.FlightMiss
	if tb != nil {
		flightFlags |= telemetry.FlightTraced
	}
	v.stats.CacheMisses++
	v.stats.Slowpath++
	if tb != nil {
		tb.Begin("slowpath")
	}
	if v.slowMu != nil {
		v.slowMu.Lock() // exclude concurrent upcall-engine traversals
	}
	var tr *Traversal
	var err error
	if v.ct != nil {
		res := ctResolver{ct: v.ct, pipe: v.pipe, conn: conn, dir: dir}
		tr, err = v.pipe.ProcessResolve(kt, &res)
	} else {
		tr, err = v.pipe.Process(kt)
	}
	if v.slowMu != nil {
		v.slowMu.Unlock()
	}
	if tb != nil {
		tb.End(err == nil)
	}
	if err != nil {
		err = fmt.Errorf("gigaflow: slowpath: %w", err)
		if tb != nil {
			tb.Finish("", false, false, err)
		}
		if v.rec != nil {
			v.rec.Cold(tier, kt.FlowHash(), flightFlags)
		}
		return ProcessResult{}, err
	}
	if tb != nil {
		tb.Begin("partition+install")
	}
	installed := true
	if v.gf != nil {
		var ev0 uint64
		if v.rec != nil {
			ev0 = v.gf.Stats().EvictLRU
		}
		if _, err := v.gf.Insert(tr, now); err != nil {
			v.stats.InstallErrs++
			installed = false
			flightFlags |= telemetry.FlightInstallErr
		} else {
			v.stats.Installs++
			flightFlags |= telemetry.FlightInstall
		}
		if v.rec != nil && v.gf.Stats().EvictLRU > ev0 {
			flightFlags |= telemetry.FlightEvict
		}
	} else {
		var ev0 uint64
		if v.rec != nil {
			ev0 = v.mf.Stats().EvictLRU
		}
		if e := v.mf.Insert(tr, now); e == nil {
			v.stats.InstallErrs++
			installed = false
			flightFlags |= telemetry.FlightInstallErr
		} else {
			v.stats.Installs++
			flightFlags |= telemetry.FlightInstall
		}
		if v.rec != nil && v.mf.Stats().EvictLRU > ev0 {
			flightFlags |= telemetry.FlightEvict
		}
	}
	if tb != nil {
		tb.End(installed)
	}
	v.memoizeCt(k, tr.FinalKey(), tr.Verdict, now, conn, dir)
	if tb != nil {
		tb.Finish(tr.Verdict.String(), false, false, nil)
	}
	if v.rec != nil {
		v.rec.Cold(tier, kt.FlowHash(), flightFlags)
	}
	return ProcessResult{Verdict: tr.Verdict, Final: tr.FinalKey()}, nil
}

// memoize records a processed flow in the Microflow tier, when enabled.
//
//gf:hotpath-safe Microflow insert allocates only on first sight of a flow; steady-state hits overwrite in place
func (v *VSwitch) memoize(k, final Key, verdict Verdict, now int64) {
	if v.uf != nil {
		v.uf.Insert(k, final, verdict, now)
	}
}

// Revalidate re-checks every cached entry against the current pipeline
// rules (§4.3.1), evicting stale ones, and drops the Microflow tier
// wholesale (exact entries cannot be rechecked incrementally). Call after
// mutating pipeline rules. Returns main-cache entries evicted and pipeline
// lookups replayed.
func (v *VSwitch) Revalidate() (evicted, work int) {
	if v.uf != nil {
		v.uf.Invalidate()
	}
	if v.gf != nil {
		return v.gf.Revalidate()
	}
	return v.mf.Revalidate(v.pipe)
}

// ExpireIdle evicts entries idle longer than the configured max-idle
// (no-op unless WithMaxIdle was set). Returns the number evicted from the
// main cache.
func (v *VSwitch) ExpireIdle(now int64) int {
	if v.ct != nil && v.ctMaxIdle > 0 {
		// Idle connections die first (epoch-poisoned), so cache entries
		// that depended on them fail validation even before their own
		// idle timers fire.
		v.ct.ExpireIdle(now, v.ctMaxIdle)
	}
	if v.maxIdle <= 0 {
		return 0
	}
	if v.uf != nil {
		v.uf.ExpireIdle(now, v.maxIdle)
	}
	if v.gf != nil {
		return v.gf.ExpireIdle(now, v.maxIdle)
	}
	return v.mf.ExpireIdle(now, v.maxIdle)
}

// CacheEntries reports the number of installed cache entries.
func (v *VSwitch) CacheEntries() int {
	if v.gf != nil {
		return v.gf.Len()
	}
	return v.mf.Len()
}

// Coverage reports the cache's rule-space coverage (Table 2); for the
// Megaflow backend this equals the entry count.
func (v *VSwitch) Coverage() uint64 {
	if v.gf != nil {
		return v.gf.Coverage()
	}
	return uint64(v.mf.Len())
}

// VSwitchTelemetry describes the vSwitch's counters and cache hierarchy
// for the introspection endpoint: end-to-end stats plus a snapshot of
// whichever cache levels are configured.
type VSwitchTelemetry struct {
	Backend   string              `json:"backend"` // "gigaflow" | "megaflow"
	Stats     VSwitchStats        `json:"stats"`
	Coverage  uint64              `json:"coverage"`
	Gigaflow  *gfcache.Snapshot   `json:"gigaflow,omitempty"`
	Megaflow  *megaflow.Snapshot  `json:"megaflow,omitempty"`
	Microflow *microflow.Snapshot `json:"microflow,omitempty"`
	Conntrack *conntrack.Stats    `json:"conntrack,omitempty"`
}

// Telemetry captures the vSwitch's current introspection view. Like every
// VSwitch method it must run on the goroutine driving the switch.
func (v *VSwitch) Telemetry() VSwitchTelemetry {
	t := VSwitchTelemetry{Stats: v.stats, Coverage: v.Coverage()}
	if v.gf != nil {
		t.Backend = "gigaflow"
		s := v.gf.Snapshot()
		t.Gigaflow = &s
	} else {
		t.Backend = "megaflow"
		s := v.mf.Snapshot()
		t.Megaflow = &s
	}
	if v.uf != nil {
		s := v.uf.Snapshot()
		t.Microflow = &s
	}
	if v.ct != nil {
		s := v.ct.Stats()
		t.Conntrack = &s
	}
	return t
}

// CollectMetrics mirrors the vSwitch's counters, occupancy gauges, and
// per-table statistics into reg under the given worker label, using the
// metric names documented in README's Observability section. Registry
// writes are atomic, but cache internals are not safe for concurrent
// readers — call on the goroutine driving the switch (the service does
// this on each worker's own goroutine at scrape time, so the fast path
// carries no metric work at all).
func (v *VSwitch) CollectMetrics(reg *telemetry.Registry, worker string) {
	c := func(name, help string, val uint64) {
		reg.CounterVec(name, help, "worker").With(worker).Set(val)
	}
	g := func(name, help string, val float64) {
		reg.GaugeVec(name, help, "worker").With(worker).Set(val)
	}
	s := v.stats
	c("gigaflow_packets_total", "Packets processed end to end.", s.Packets)
	c("gigaflow_microflow_hits_total", "Exact-match first-level cache hits.", s.MicroflowHits)
	c("gigaflow_cache_hits_total", "Main-cache (Gigaflow/Megaflow) hits.", s.CacheHits)
	c("gigaflow_cache_misses_total", "Main-cache misses (slowpath punts).", s.CacheMisses)
	c("gigaflow_slowpath_traversals_total", "Full pipeline traversals executed.", s.Slowpath)
	c("gigaflow_installs_total", "Traversals compiled and installed into the cache.", s.Installs)
	c("gigaflow_install_errors_total", "Traversals that could not be installed.", s.InstallErrs)
	g("gigaflow_cache_entries", "Installed main-cache entries.", float64(v.CacheEntries()))
	g("gigaflow_cache_coverage", "Rule-space coverage of the installed entries.", float64(v.Coverage()))

	// Cache-churn rates, uniform across backends: inserts and removals by
	// cause, so expiry/eviction behavior under load is visible per tier.
	churn := func(reason string, val uint64) {
		reg.CounterVec("gigaflow_cache_evictions_total",
			"Main-cache entries removed, by cause.",
			"worker", "reason").With(worker, reason).Set(val)
	}

	if v.gf != nil {
		gs := v.gf.Stats()
		c("gigaflow_cache_inserts_total", "Entries created in the main cache.", gs.EntriesCreated)
		churn("lru", gs.EvictLRU)
		churn("expired", gs.Expired)
		churn("revoked", gs.Revoked)
		c("gigaflow_cache_stalls_total", "Misses that matched a partial entry chain.", gs.Stalls)
		c("gigaflow_shared_reuse_total", "Sub-traversal installs deduplicated against resident entries.", gs.SharedReuse)
		c("gigaflow_conflicts_total", "Entries replaced due to same-predicate conflicts.", gs.Conflicts)
		c("gigaflow_tables_probed_total", "LTM table consultations across lookups.", gs.TablesProbed)
		c("gigaflow_tuple_probes_total", "TSS tuple probes across lookups.", gs.TupleProbes)
		c("gigaflow_reval_work_total", "Pipeline table lookups spent revalidating.", gs.RevalWork)
		g("gigaflow_cache_capacity", "Total main-cache entry capacity.", float64(v.gf.Capacity()))
		tc := func(name, help string, table string, val uint64) {
			reg.CounterVec(name, help, "worker", "table").With(worker, table).Set(val)
		}
		tg := func(name, help string, table string, val float64) {
			reg.GaugeVec(name, help, "worker", "table").With(worker, table).Set(val)
		}
		for i := 0; i < v.gf.NumTables(); i++ {
			ts := v.gf.TableSnapshot(i)
			tl := fmt.Sprintf("%d", i)
			tc("gigaflow_table_hits_total", "Entry matches in this LTM table.", tl, ts.Hits)
			tc("gigaflow_table_inserts_total", "Entries created in this LTM table.", tl, ts.Inserts)
			tg("gigaflow_table_occupancy", "Resident entries in this LTM table.", tl, float64(ts.Len))
			tg("gigaflow_table_capacity", "Entry capacity of this LTM table.", tl, float64(ts.Capacity))
			tg("gigaflow_table_tags", "Distinct pipeline-table tags resident in this LTM table.", tl, float64(ts.Tags))
			te := func(reason string, val uint64) {
				reg.CounterVec("gigaflow_table_evictions_total",
					"Entries removed from this LTM table, by cause.",
					"worker", "table", "reason").With(worker, tl, reason).Set(val)
			}
			te("lru", ts.EvictLRU)
			te("expired", ts.Expired)
			te("revoked", ts.Revoked)
		}
	} else {
		ms := v.mf.Snapshot()
		c("gigaflow_cache_inserts_total", "Entries created in the main cache.", ms.Inserts)
		churn("lru", ms.EvictLRU)
		churn("expired", ms.Expired)
		churn("revoked", ms.Revoked)
		c("gigaflow_megaflow_replaced_total", "Entries replaced by an equal-mask reinstall.", ms.Replaced)
		c("gigaflow_megaflow_rejected_total", "Installs rejected by the Megaflow cache.", ms.Rejected)
		g("gigaflow_cache_capacity", "Total main-cache entry capacity.", float64(ms.Capacity))
		g("gigaflow_megaflow_masks", "Distinct TSS tuples in the Megaflow cache.", float64(ms.Masks))
		c("gigaflow_tuple_probes_total", "TSS tuple probes across lookups.", ms.TupleProbes)
		c("gigaflow_reval_work_total", "Pipeline table lookups spent revalidating.", ms.RevalWork)
	}

	if v.uf != nil {
		us := v.uf.Snapshot()
		g("gigaflow_microflow_entries", "Resident exact-match entries.", float64(us.Len))
		g("gigaflow_microflow_capacity", "Exact-match tier entry capacity.", float64(us.Capacity))
		c("gigaflow_microflow_inserts_total", "Exact-match entries memoized.", us.Inserts)
		c("gigaflow_microflow_evictions_total", "Exact-match entries evicted by LRU.", us.EvictLRU)
		c("gigaflow_microflow_expired_total", "Exact-match entries removed by idle expiry.", us.Expired)
		c("gigaflow_microflow_invalidated_total", "Exact-match entries dropped by revalidation.", us.Invalid)
	}

	if v.ct != nil {
		cs := v.ct.Stats()
		c("gigaflow_ct_lookups_total", "Conntrack table probes (tracked protocols).", cs.Lookups)
		c("gigaflow_ct_hits_total", "Conntrack probes that found an existing connection.", cs.Hits)
		c("gigaflow_ct_created_total", "Connections created (including reopens).", cs.Created)
		c("gigaflow_ct_transitions_total", "Connection state transitions.", cs.Transitions)
		c("gigaflow_ct_reopened_total", "Closed connections replaced by a fresh handshake.", cs.Reopened)
		c("gigaflow_ct_expired_total", "Connections removed by idle expiry.", cs.Expired)
		c("gigaflow_ct_evictions_total", "Connections evicted by table pressure.", cs.EvictLRU)
		c("gigaflow_ct_displaced_total", "Connections removed by a tuple-registration clash.", cs.Displaced)
		g("gigaflow_ct_connections", "Live tracked connections.", float64(v.ct.Len()))
		c("gigaflow_ct_fastpath_total", "Microflow hits served under the conntrack epoch guard.", s.CtFastpath)
		c("gigaflow_ct_guard_fails_total", "Microflow entries dropped by the conntrack guard.", s.CtGuardFails)
		c("gigaflow_ct_invalidated_total", "Main-cache entries removed on a stale conntrack epoch.", s.CtInvalidated)
	}

	if v.rec != nil {
		lat := reg.GaugeVec("gigaflow_latency_ns",
			"Per-tier packet latency quantile estimate (ns).", "worker", "tier", "quantile")
		pkts := reg.CounterVec("gigaflow_latency_packets_total",
			"Packets attributed to this latency tier.", "worker", "tier")
		for t := telemetry.Tier(0); t < telemetry.NumTiers; t++ {
			h := v.rec.Histogram(t)
			tl := t.String()
			pkts.With(worker, tl).Set(h.Count())
			if h.Count() == 0 {
				continue
			}
			ls := h.Snapshot()
			lat.With(worker, tl, "0.5").Set(ls.P50)
			lat.With(worker, tl, "0.9").Set(ls.P90)
			lat.With(worker, tl, "0.99").Set(ls.P99)
			lat.With(worker, tl, "0.999").Set(ls.P999)
			lat.With(worker, tl, "max").Set(float64(ls.MaxNs))
		}
		c("gigaflow_flight_records_total", "Flight-recorder records written.", v.rec.Seq())
		c("gigaflow_latency_spikes_total", "Flight-recorder spike captures triggered.", v.rec.Spikes())
	}
}
