package gigaflow

import (
	"fmt"

	gfcache "gigaflow/internal/gigaflow"
	"gigaflow/internal/megaflow"
	"gigaflow/internal/microflow"
)

// VSwitch couples a hardware flow cache with the software slowpath: the
// complete Figure 5 workflow. Packets are first classified by the cache;
// on a miss the flow signature runs through the userspace pipeline, the
// resulting traversal is partitioned and compiled into cache rules, and
// the rules are installed so subsequent packets — including packets of
// *other* flows sharing sub-traversals — hit in hardware.
//
// VSwitch is not safe for concurrent use; drive it from one goroutine (the
// paper's configurations dedicate a single CPU core to the slowpath).
type VSwitch struct {
	pipe *Pipeline
	gf   *gfcache.Cache
	mf   *megaflow.Cache  // optional alternative backend
	uf   *microflow.Cache // optional exact-match first level

	maxIdle int64
	stats   VSwitchStats
}

// VSwitchStats counts end-to-end events.
type VSwitchStats struct {
	Packets       uint64
	MicroflowHits uint64 // exact-match first-level hits (if enabled)
	CacheHits     uint64
	CacheMisses   uint64
	Slowpath      uint64 // traversals executed
	Installs      uint64
	InstallErrs   uint64
}

// HitRate reports CacheHits/Packets.
func (s *VSwitchStats) HitRate() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Packets)
}

// VSwitchOption configures a VSwitch.
type VSwitchOption func(*VSwitch)

// WithMaxIdle enables idle expiry of cache entries (§4.3.2); call
// ExpireIdle periodically with the current virtual time.
func WithMaxIdle(ns int64) VSwitchOption {
	return func(v *VSwitch) { v.maxIdle = ns }
}

// WithMegaflowBackend replaces the Gigaflow cache with a Megaflow cache of
// the given capacity — the baseline configuration, useful for comparisons.
func WithMegaflowBackend(capacity int) VSwitchOption {
	return func(v *VSwitch) {
		v.gf = nil
		v.mf = megaflow.New(capacity)
	}
}

// WithMicroflow fronts the main cache with an exact-match Microflow tier
// of the given capacity, completing the OVS cache hierarchy (§2.1). It is
// invalidated wholesale on revalidation, as OVS does — exact entries carry
// no wildcard to recheck incrementally.
func WithMicroflow(capacity int) VSwitchOption {
	return func(v *VSwitch) { v.uf = microflow.New(capacity) }
}

// NewVSwitch builds a vSwitch around a pipeline with a Gigaflow cache of
// the given configuration.
func NewVSwitch(p *Pipeline, cfg CacheConfig, opts ...VSwitchOption) *VSwitch {
	v := &VSwitch{pipe: p, gf: gfcache.New(p, cfg)}
	for _, o := range opts {
		o(v)
	}
	return v
}

// Pipeline returns the slowpath pipeline.
func (v *VSwitch) Pipeline() *Pipeline { return v.pipe }

// Cache returns the Gigaflow cache, or nil when running with the Megaflow
// backend.
func (v *VSwitch) Cache() *gfcache.Cache { return v.gf }

// Stats returns a snapshot of the counters.
func (v *VSwitch) Stats() VSwitchStats { return v.stats }

// ProcessResult describes one packet's handling.
type ProcessResult struct {
	Verdict Verdict
	Final   Key
	// CacheHit reports whether a cache (Microflow or the main cache)
	// handled the packet without the slowpath.
	CacheHit bool
	// MicroflowHit reports whether the exact-match first level served it.
	MicroflowHit bool
}

// Process handles one packet at virtual time now (nanoseconds): Microflow
// exact-match (if enabled), main cache lookup, slowpath on miss, rule
// installation.
func (v *VSwitch) Process(k Key, now int64) (ProcessResult, error) {
	v.stats.Packets++
	if v.uf != nil {
		if e, ok := v.uf.Lookup(k, now); ok {
			v.stats.MicroflowHits++
			v.stats.CacheHits++
			return ProcessResult{Verdict: e.Verdict, Final: e.Final, CacheHit: true, MicroflowHit: true}, nil
		}
	}
	if v.gf != nil {
		if res := v.gf.Lookup(k, now); res.Hit {
			v.stats.CacheHits++
			v.memoize(k, res.Final, res.Verdict, now)
			return ProcessResult{Verdict: res.Verdict, Final: res.Final, CacheHit: true}, nil
		}
	} else if e, ok := v.mf.Lookup(k, now); ok {
		v.stats.CacheHits++
		final, verdict := e.Apply(k)
		v.memoize(k, final, verdict, now)
		return ProcessResult{Verdict: verdict, Final: final, CacheHit: true}, nil
	}
	v.stats.CacheMisses++
	v.stats.Slowpath++
	tr, err := v.pipe.Process(k)
	if err != nil {
		return ProcessResult{}, fmt.Errorf("gigaflow: slowpath: %w", err)
	}
	if v.gf != nil {
		if _, err := v.gf.Insert(tr, now); err != nil {
			v.stats.InstallErrs++
		} else {
			v.stats.Installs++
		}
	} else {
		if e := v.mf.Insert(tr, now); e == nil {
			v.stats.InstallErrs++
		} else {
			v.stats.Installs++
		}
	}
	v.memoize(k, tr.FinalKey(), tr.Verdict, now)
	return ProcessResult{Verdict: tr.Verdict, Final: tr.FinalKey()}, nil
}

// memoize records a processed flow in the Microflow tier, when enabled.
func (v *VSwitch) memoize(k, final Key, verdict Verdict, now int64) {
	if v.uf != nil {
		v.uf.Insert(k, final, verdict, now)
	}
}

// Revalidate re-checks every cached entry against the current pipeline
// rules (§4.3.1), evicting stale ones, and drops the Microflow tier
// wholesale (exact entries cannot be rechecked incrementally). Call after
// mutating pipeline rules. Returns main-cache entries evicted and pipeline
// lookups replayed.
func (v *VSwitch) Revalidate() (evicted, work int) {
	if v.uf != nil {
		v.uf.Invalidate()
	}
	if v.gf != nil {
		return v.gf.Revalidate()
	}
	return v.mf.Revalidate(v.pipe)
}

// ExpireIdle evicts entries idle longer than the configured max-idle
// (no-op unless WithMaxIdle was set). Returns the number evicted from the
// main cache.
func (v *VSwitch) ExpireIdle(now int64) int {
	if v.maxIdle <= 0 {
		return 0
	}
	if v.uf != nil {
		v.uf.ExpireIdle(now, v.maxIdle)
	}
	if v.gf != nil {
		return v.gf.ExpireIdle(now, v.maxIdle)
	}
	return v.mf.ExpireIdle(now, v.maxIdle)
}

// CacheEntries reports the number of installed cache entries.
func (v *VSwitch) CacheEntries() int {
	if v.gf != nil {
		return v.gf.Len()
	}
	return v.mf.Len()
}

// Coverage reports the cache's rule-space coverage (Table 2); for the
// Megaflow backend this equals the entry count.
func (v *VSwitch) Coverage() uint64 {
	if v.gf != nil {
		return v.gf.Coverage()
	}
	return uint64(v.mf.Len())
}
