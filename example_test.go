package gigaflow_test

import (
	"fmt"

	"gigaflow"
)

// ExampleVSwitch shows the complete offload workflow: program a pipeline,
// attach a Gigaflow cache, and watch a flow the cache never saw hit in
// hardware by recombining cached sub-traversals.
func ExampleVSwitch() {
	p := gigaflow.NewPipeline("example")
	p.AddTable(0, "l2", gigaflow.NewFieldSet(gigaflow.FieldEthDst))
	p.AddTable(1, "l3", gigaflow.NewFieldSet(gigaflow.FieldIPDst))
	p.AddTable(2, "acl", gigaflow.NewFieldSet(gigaflow.FieldTpDst))
	p.MustAddRule(0, gigaflow.MustParseMatch("eth_dst=02:00:00:00:00:01"), 10, nil, 1)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.0.0/24"), 10, nil, 2)
	p.MustAddRule(1, gigaflow.MustParseMatch("ip_dst=10.0.1.0/24"), 10, nil, 2)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=80"), 10,
		[]gigaflow.Action{gigaflow.Output(1)}, gigaflow.NoTable)
	p.MustAddRule(2, gigaflow.MustParseMatch("tp_dst=443"), 10,
		[]gigaflow.Action{gigaflow.Output(2)}, gigaflow.NoTable)

	vs := gigaflow.NewVSwitch(p, gigaflow.CacheConfig{NumTables: 3, TableCapacity: 1024})
	key := func(subnet, host, port uint64) gigaflow.Key {
		return gigaflow.MustParseKey("eth_dst=02:00:00:00:00:01,eth_type=0x0800").
			With(gigaflow.FieldIPDst, 0x0a000000|subnet<<8|host).
			With(gigaflow.FieldTpDst, port)
	}

	// Two seed flows install sub-traversals via the slowpath.
	r1, _ := vs.Process(key(0, 5, 80), 0)
	r2, _ := vs.Process(key(1, 9, 443), 1)
	fmt.Println("flow A:", r1.Verdict, "cache hit:", r1.CacheHit)
	fmt.Println("flow B:", r2.Verdict, "cache hit:", r2.CacheHit)

	// A brand-new flow combining A's subnet with B's port hits in
	// hardware — the cross-product coverage of sub-traversal caching.
	r3, _ := vs.Process(key(0, 77, 443), 2)
	fmt.Println("flow C:", r3.Verdict, "cache hit:", r3.CacheHit)
	fmt.Println("entries:", vs.CacheEntries(), "coverage:", vs.Coverage())

	// Output:
	// flow A: output(1) cache hit: false
	// flow B: output(2) cache hit: false
	// flow C: output(2) cache hit: true
	// entries: 5 coverage: 4
}
